"""Sharded scenario execution: partition, spill, merge.

A sharded run splits a fleet spec into :class:`ShardSpec` slices (whole
partition cells — see :mod:`repro.fleet.partition`), simulates each
slice as an independent job on the
:class:`~repro.runtime.pool.WorkerPool`, spills every shard's
:class:`~repro.core.columns.EventTable` to an ``.npz`` (see
:mod:`repro.core.colstore`), and merges the spills — memory-mapped, no
event objects — into one detection-sorted table that is byte-identical
to what the unsharded run produces.  The merged fleet holds
:class:`~repro.fleet.vista.SystemVista` records instead of the object
graph, so peak memory is bounded by the largest *shard*, not the fleet.

Each shard is cached individually in the runtime's
:class:`~repro.runtime.cache.ResultCache` under a content-addressed key
derived from (version, scenario, scale, seed, engine, cell set) — so a
config change that only invalidates some shards (or a deleted spill
file) re-simulates exactly those shards, and a warm cache re-runs
nothing at all.

Restrictions: ``via_logs`` is rejected (the AutoSupport log pipeline
needs one coherent archive), and analyses that walk individual disks
raise :class:`~repro.errors.AnalysisError` on the vista fleet.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import tempfile
from typing import Dict, List, Optional, Tuple

from repro import envvars, obs
from repro.core.colstore import (
    SPILL_SCHEMA_VERSION,
    load_table,
    merge_tables,
    save_table,
)
from repro.errors import SpecificationError
from repro.fleet.builder import system_id_for
from repro.fleet.partition import cell_of, cells_of_shard, shard_of_cell
from repro.fleet.vista import SystemVista, fleet_order_key
from repro.runtime.cache import MISSING
from repro.topology.classes import SYSTEM_CLASS_ORDER, SystemClass
from repro.version import __version__


@dataclasses.dataclass(frozen=True)
class ShardSpec:
    """One shard: the cells it owns and the systems they select.

    Attributes:
        index: shard position in the plan.
        n_shards: total shards in the plan.
        cells: partition cells this shard owns (ascending).
        selection: per class (by value, builder order), the global
            system indices to build — the ``selection`` handed to
            :func:`repro.fleet.builder.build_fleet`, as nested tuples so
            the spec is hashable and picklable.
    """

    index: int
    n_shards: int
    cells: Tuple[int, ...]
    selection: Tuple[Tuple[str, Tuple[int, ...]], ...]

    @property
    def n_systems(self) -> int:
        return sum(len(indices) for _, indices in self.selection)

    def selection_mapping(self) -> Dict[SystemClass, Tuple[int, ...]]:
        """The selection as the mapping ``build_fleet`` consumes."""
        return {
            SystemClass(value): indices for value, indices in self.selection
        }


@dataclasses.dataclass(frozen=True)
class ShardPlan:
    """A full partition of a fleet spec into shards.

    Built purely from system *ids* (a function of class and index —
    no fleet is materialized), so planning a paper-scale run costs
    microseconds.  Union of all shard selections = every system in the
    spec, each exactly once; with more shards than cells the surplus
    shards are empty.
    """

    n_shards: int
    shards: Tuple[ShardSpec, ...]

    @classmethod
    def build(cls, spec, n_shards: int) -> "ShardPlan":
        """Partition ``spec`` (a :class:`~repro.fleet.spec.FleetSpec`)."""
        if n_shards < 1:
            raise SpecificationError(
                "shard count must be >= 1, got %d" % n_shards
            )
        members: List[Dict[str, List[int]]] = [{} for _ in range(n_shards)]
        for system_class in SYSTEM_CLASS_ORDER:
            if system_class not in spec.class_specs:
                continue
            count = spec.scaled_systems(system_class)
            for index in range(count):
                cell = cell_of(system_id_for(system_class, index))
                shard = shard_of_cell(cell, n_shards)
                members[shard].setdefault(system_class.value, []).append(index)
        return cls(
            n_shards=n_shards,
            shards=tuple(
                ShardSpec(
                    index=index,
                    n_shards=n_shards,
                    cells=cells_of_shard(index, n_shards),
                    selection=tuple(
                        (value, tuple(indices))
                        for value, indices in by_class.items()
                    ),
                )
                for index, by_class in enumerate(members)
            ),
        )

    @property
    def n_systems(self) -> int:
        return sum(shard.n_systems for shard in self.shards)

    def non_empty(self) -> Tuple[ShardSpec, ...]:
        """The shards that actually hold systems."""
        return tuple(shard for shard in self.shards if shard.n_systems)


def shard_canonical(scenario: str, scale: float, seed: int, shard: ShardSpec) -> str:
    """Canonical string a shard's cache key is derived from.

    Content-addressed by the *cells*, not the shard index or count: two
    plans that assign the same cells to a shard (e.g. a 32-shard and a
    64-shard run) share cached shard results.  Embeds the package
    version, the engine selection, and the spill schema so any of them
    changing invalidates the entry.
    """
    return (
        "repro/%s shard scenario=%s scale=%r seed=%d engine=%s "
        "schema=%d cells=%s"
        % (
            __version__,
            scenario,
            float(scale),
            int(seed),
            "vector" if envvars.get_flag("REPRO_VECTOR_ENGINE") else "legacy",
            SPILL_SCHEMA_VERSION,
            ",".join(str(cell) for cell in shard.cells),
        )
    )


def shard_key(scenario: str, scale: float, seed: int, shard: ShardSpec) -> str:
    """SHA-256 cache address of one shard's result."""
    return hashlib.sha256(
        shard_canonical(scenario, scale, seed, shard).encode("utf-8")
    ).hexdigest()


def spill_directory(runtime) -> str:
    """Where shard spills land: ``$REPRO_SHARD_SPILL_DIR``, else under
    the result cache (or the system temp dir for memory-only caches)."""
    env = envvars.get("REPRO_SHARD_SPILL_DIR")
    if env:
        return os.path.abspath(os.path.expanduser(env))
    if runtime.cache.persist:
        return os.path.join(runtime.cache.directory, "shards")
    return os.path.join(tempfile.gettempdir(), "repro-shards")


class ShardedInjection:
    """Placeholder for the merged result's missing injector output.

    Shard injections live and die inside the workers; consumers that
    need raw injector state (the log writer, the failure predictor) get
    a clear :class:`~repro.errors.AnalysisError` instead of an
    ``AttributeError`` on ``None``.
    """

    def __getattr__(self, name: str):
        if name.startswith("__") and name.endswith("__"):
            # Keep protocol probes (pickling, copying) on the normal
            # AttributeError path.
            raise AttributeError(name)
        from repro.errors import AnalysisError

        raise AnalysisError(
            "injection data (.%s) is not available on a sharded run: "
            "shard injections live and die in the worker processes; "
            "re-run without --shards for consumers that need raw "
            "injector output" % name
        )

    def __repr__(self) -> str:
        return "ShardedInjection()"


@dataclasses.dataclass
class ShardMeta:
    """What a shard worker hands back (and what the cache stores).

    The event table itself stays on disk at ``spill_path``; the meta
    carries only the per-system vistas and counts, so a cache entry is
    kilobytes however large the shard was.
    """

    key: str
    spill_path: str
    n_events: int
    n_recovered: int
    vistas: List[SystemVista]
    window_end: float


def execute_shard_payload(payload: Dict[str, object]) -> ShardMeta:
    """Worker entry point: simulate one shard and spill its table.

    Module-level (picklable) for :class:`~repro.runtime.pool.WorkerPool`.
    The payload is the picklable dict :func:`run_sharded_scenario`
    builds: scenario name, scale, seed, the shard's index and selection,
    and where to spill.  Wrapped in a ``runtime.shard.execute`` span
    (merged into the parent trace as this worker's lane) and bracketed
    by live-monitor heartbeats when ``$REPRO_STATUS_DIR`` is set.
    """
    from repro.obs.sampler import PROGRESS, begin_worker_task, end_worker_task
    from repro.simulate.scenario import run_scenario

    selection = {
        SystemClass(value): indices
        for value, indices in payload["selection"]  # type: ignore[union-attr]
    }
    index = payload.get("index")
    shard_index = int(index) if index is not None else -1
    n_systems = sum(len(indices) for indices in selection.values())
    begin_worker_task(shard=shard_index, role="shard", systems=n_systems)
    with obs.span(
        "runtime.shard.execute", shard=shard_index, systems=n_systems
    ):
        result = run_scenario(
            str(payload["scenario"]),
            scale=float(payload["scale"]),  # type: ignore[arg-type]
            seed=int(payload["seed"]),  # type: ignore[arg-type]
            selection=selection,
        )
        table = result.dataset.table
        spill_path = str(payload["spill_path"])
        save_table(spill_path, table)
    PROGRESS.advance("shards_completed")
    end_worker_task(events=len(table))
    window_end = result.fleet.duration_seconds
    return ShardMeta(
        key=str(payload["key"]),
        spill_path=spill_path,
        n_events=len(table),
        n_recovered=result.injection.n_recovered(),
        vistas=[
            SystemVista.from_system(system, window_end)
            for system in result.fleet.systems
        ],
        window_end=window_end,
    )


def run_sharded_scenario(
    name: str,
    scale: float,
    seed: int,
    runtime,
    n_shards: int,
    via_logs: bool = False,
):
    """Run a scenario sharded ``n_shards`` ways (see module docstring).

    Args:
        name: a key of :data:`repro.simulate.scenario.SCENARIOS`.
        scale / seed: as for ``run_scenario``; results match exactly.
        runtime: the :class:`~repro.runtime.context.RuntimeContext`
            providing the pool, the cache, and the metrics registry.
        n_shards: how many shards to split into (>= 1).
        via_logs: must be False; the log pipeline needs one archive.

    Returns:
        A :class:`~repro.simulate.engine.SimulationResult` whose
        ``fleet`` holds vistas and whose ``injection`` is a
        :class:`ShardedInjection` placeholder (shard injections live
        and die in the workers).

    Raises:
        SpecificationError: unknown scenario, ``via_logs=True``, or a
            shard count below 1.
    """
    from repro.core.dataset import FailureDataset
    from repro.fleet.fleet import Fleet
    from repro.simulate.engine import SimulationResult
    from repro.simulate.scenario import SCENARIOS

    if via_logs:
        raise SpecificationError(
            "sharded runs cannot use the log pipeline (via_logs): the "
            "AutoSupport writer needs the whole fleet in one archive; "
            "re-run without --shards"
        )
    try:
        scenario = SCENARIOS[name]
    except KeyError:
        raise SpecificationError(
            "unknown scenario %r (have: %s)" % (name, ", ".join(sorted(SCENARIOS)))
        ) from None
    spec = scenario.make_spec(scale)
    plan = ShardPlan.build(spec, n_shards)
    spill_dir = spill_directory(runtime)

    from repro.obs.sampler import PROGRESS

    metas: Dict[int, ShardMeta] = {}
    pending: List[Dict[str, object]] = []
    for shard in plan.non_empty():
        key = shard_key(name, scale, seed, shard)
        spill_path = os.path.join(spill_dir, key + ".npz")
        cached = runtime.cache.get(key)
        if isinstance(cached, ShardMeta) and os.path.exists(cached.spill_path):
            metas[shard.index] = cached
            PROGRESS.advance("shards_cached")
            continue
        # Cached meta without its spill (cleaned temp dir, pruned
        # cache): treat as a miss and re-simulate just this shard.
        pending.append(
            {
                "scenario": name,
                "scale": float(scale),
                "seed": int(seed),
                "selection": shard.selection,
                "spill_path": spill_path,
                "key": key,
                "index": shard.index,
            }
        )
    with obs.span(
        "runtime.shards",
        scenario=name,
        shards=n_shards,
        executed=len(pending),
    ):
        if pending:
            results = runtime.pool().map(execute_shard_payload, pending)
            for payload, meta in zip(pending, results):
                metas[int(payload["index"])] = meta  # type: ignore[arg-type]
                runtime.cache.put(meta.key, meta)
                # One sharded scenario counts one sim.runs per shard
                # actually executed; warm re-runs stay at zero.
                runtime.metrics.increment("sim.runs")
        with obs.span("runtime.shards.merge", tables=len(metas)):
            table = merge_tables(
                load_table(metas[index].spill_path)
                for index in sorted(metas)
            )
        vistas = sorted(
            (vista for meta in metas.values() for vista in meta.vistas),
            key=fleet_order_key,
        )
        fleet = Fleet(systems=vistas, duration_seconds=spec.duration_seconds)
        dataset = FailureDataset(events=table, fleet=fleet)
    obs.inc("sim.events", len(table))
    return SimulationResult(
        spec=spec,
        seed=seed,
        fleet=fleet,
        injection=ShardedInjection(),
        dataset=dataset,
        archive=None,
    )


__all__ = [
    "ShardMeta",
    "ShardPlan",
    "ShardSpec",
    "ShardedInjection",
    "execute_shard_payload",
    "run_sharded_scenario",
    "shard_canonical",
    "shard_key",
    "spill_directory",
]
