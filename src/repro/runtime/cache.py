"""Content-addressed result store: on-disk pickles plus a memory layer.

Layout is one pickle file per entry, named ``<key>.pkl`` directly under
the cache directory, where ``key`` is the job's canonical SHA-256 hex
digest (see :meth:`repro.runtime.jobs.Job.key`).  The key embeds the
package version, so upgrading ``repro`` naturally invalidates every
entry; after local code changes within one version, ``repro cache
clear`` forces re-execution.

Two independent switches control behavior: ``enabled=False`` turns the
cache off entirely (every ``get`` misses silently, ``put`` is a no-op),
while ``persist=False`` keeps the in-process memory layer but never
touches disk — that is what the CLI's ``--no-cache`` maps to, so one
``repro run all`` still shares simulations across experiments without
leaving state behind.

Writes are atomic (temp file + ``os.replace``) so a concurrent reader
never sees a torn pickle; unreadable entries are treated as misses and
deleted best-effort.
"""

from __future__ import annotations

import dataclasses
import glob
import os
import pickle
import tempfile
from typing import Dict, List, Optional

from repro import envvars

#: Soft cap on on-disk entries; the oldest (by mtime) are evicted first.
DEFAULT_MAX_ENTRIES = 512

#: Sentinel returned by :meth:`ResultCache.get` on a miss (results may
#: legitimately be ``None``, so ``None`` cannot signal absence).
MISSING = object()


def default_cache_dir() -> str:
    """The default cache directory: ``$REPRO_CACHE_DIR`` or ``~/.cache/repro``."""
    env = envvars.get("REPRO_CACHE_DIR")
    if env:
        return env
    return os.path.join(os.path.expanduser("~"), ".cache", "repro")


@dataclasses.dataclass(frozen=True)
class CacheStats:
    """Point-in-time cache accounting.

    Attributes:
        directory: the on-disk location.
        entries / size_bytes: current disk contents.
        hits / misses / stores / evictions: this process's lifetime
            counters (not persisted across processes).
    """

    directory: str
    entries: int
    size_bytes: int
    hits: int
    misses: int
    stores: int
    evictions: int


class ResultCache:
    """Content-addressed result store (see module docstring).

    Args:
        directory: cache directory (default :func:`default_cache_dir`).
        enabled: master switch; ``False`` makes every operation a no-op.
        persist: keep the on-disk layer; ``False`` is memory-only.
        max_entries: on-disk entry cap enforced at ``put`` time.
        metrics: optional :class:`~repro.runtime.metrics.RuntimeMetrics`
            receiving ``cache.hit`` / ``cache.miss`` / ``cache.store`` /
            ``cache.evict`` counters.
    """

    def __init__(
        self,
        directory: Optional[str] = None,
        enabled: bool = True,
        persist: bool = True,
        max_entries: int = DEFAULT_MAX_ENTRIES,
        metrics=None,
    ) -> None:
        self.directory = os.path.abspath(directory or default_cache_dir())
        self.enabled = enabled
        self.persist = persist
        self.max_entries = max_entries
        self._metrics = metrics
        self._memory: Dict[str, object] = {}
        self._hits = 0
        self._misses = 0
        self._stores = 0
        self._evictions = 0

    # -- wiring ---------------------------------------------------------------

    def bind_metrics(self, metrics) -> None:
        """Redirect counter emission to a (fresh) metrics registry."""
        self._metrics = metrics

    # -- lookup ---------------------------------------------------------------

    def get(self, key: str) -> object:
        """The stored value for ``key``, or :data:`MISSING`."""
        if not self.enabled:
            return MISSING
        if key in self._memory:
            self._count_hit()
            return self._memory[key]
        if self.persist:
            path = self._path(key)
            try:
                with open(path, "rb") as handle:
                    value = pickle.load(handle)
            except (OSError, pickle.UnpicklingError, EOFError, AttributeError):
                self._remove_quietly(path)
            else:
                self._memory[key] = value
                self._count_hit()
                return value
        self._misses += 1
        self._emit("cache.miss")
        return MISSING

    def contains(self, key: str) -> bool:
        """Whether ``key`` is present, without touching hit/miss counters."""
        if not self.enabled:
            return False
        if key in self._memory:
            return True
        return self.persist and os.path.exists(self._path(key))

    # -- storage --------------------------------------------------------------

    def put(self, key: str, value: object) -> None:
        """Store ``value`` under ``key`` (memory, and disk when persistent)."""
        if not self.enabled:
            return
        self._memory[key] = value
        self._stores += 1
        self._emit("cache.store")
        if not self.persist:
            return
        # Disk persistence is an optimization: an unwritable directory
        # (read-only HOME, a file where a dir was expected) degrades to
        # memory-only instead of failing the run, and is surfaced via
        # the ``cache.disk_error`` counter in the metrics footer.
        temp_path = None
        try:
            os.makedirs(self.directory, exist_ok=True)
            fd, temp_path = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(value, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(temp_path, self._path(key))
        except OSError:
            if temp_path is not None:
                self._remove_quietly(temp_path)
            self._emit("cache.disk_error")
            return
        except BaseException:
            if temp_path is not None:
                self._remove_quietly(temp_path)
            raise
        self._evict()

    def adopt(self, key: str, value: object) -> None:
        """Memory-only store for a value already persisted elsewhere.

        Used by the scheduler when a worker process has written the disk
        entry itself: the parent keeps the deserialized object hot
        without rewriting the file or counting a store.
        """
        if self.enabled:
            self._memory[key] = value

    # -- maintenance ----------------------------------------------------------

    def clear(self) -> int:
        """Drop every entry (memory + disk); returns the number removed."""
        removed = len(self._memory)
        self._memory.clear()
        disk = self._disk_entries()
        for path in disk:
            self._remove_quietly(path)
        return max(removed, len(disk))

    def stats(self) -> CacheStats:
        """Current disk contents plus this process's counters."""
        entries = self._disk_entries()
        size = 0
        for path in entries:
            try:
                size += os.path.getsize(path)
            except OSError:
                pass
        return CacheStats(
            directory=self.directory,
            entries=len(entries),
            size_bytes=size,
            hits=self._hits,
            misses=self._misses,
            stores=self._stores,
            evictions=self._evictions,
        )

    # -- internals -------------------------------------------------------------

    def _path(self, key: str) -> str:
        return os.path.join(self.directory, key + ".pkl")

    def _disk_entries(self) -> List[str]:
        return glob.glob(os.path.join(self.directory, "*.pkl"))

    def _evict(self) -> None:
        entries = self._disk_entries()
        if len(entries) <= self.max_entries:
            return
        entries.sort(key=lambda path: (self._mtime(path), path))
        for path in entries[: len(entries) - self.max_entries]:
            self._remove_quietly(path)
            self._evictions += 1
            self._emit("cache.evict")

    @staticmethod
    def _mtime(path: str) -> float:
        try:
            return os.path.getmtime(path)
        except OSError:
            return 0.0

    @staticmethod
    def _remove_quietly(path: str) -> None:
        try:
            os.remove(path)
        except OSError:
            pass

    def _count_hit(self) -> None:
        self._hits += 1
        self._emit("cache.hit")

    def _emit(self, name: str) -> None:
        if self._metrics is not None:
            self._metrics.increment(name)
