"""Jobs: canonical, hashable requests for one simulation or experiment.

A :class:`Job` names *what* to compute — a scenario simulation or a
registered experiment — together with everything the result depends on
(scale, seed, log routing).  Its :meth:`Job.key` is the SHA-256 of a
canonical string that also embeds the package version, which is what
makes results content-addressable: identical keys are guaranteed to
denote identical results, so the cache and the deduplicating scheduler
both operate purely on keys.

:func:`execute_payload` is the worker-process entry point used by the
pool: it rebuilds a runtime context from a picklable config dict (one
per worker process, reused across jobs so the in-memory cache layer is
shared) and returns ``(result, metrics snapshot)`` for the parent to
merge.
"""

from __future__ import annotations

import dataclasses
import hashlib
from typing import Dict, Tuple

from repro import envvars
from repro.errors import SpecificationError
from repro.version import __version__

KIND_SCENARIO = "scenario"
KIND_EXPERIMENT = "experiment"

#: The scenario experiments read by default; an experiment job's
#: declared simulation dependency (extra scenarios an experiment pulls
#: in are simulated lazily through the same cached path).
DEFAULT_SCENARIO = "paper-default"


@dataclasses.dataclass(frozen=True)
class Job:
    """One experiment-or-scenario request with a canonical cache key.

    Attributes:
        kind: :data:`KIND_SCENARIO` or :data:`KIND_EXPERIMENT`.
        name: scenario name or experiment id.
        scale: fleet scale relative to the paper's 39,000 systems.
        seed: root random seed.
        via_logs: route datasets through the AutoSupport log pipeline.
        shards: split simulations into this many spill-to-disk shards
            (1 = classic unsharded execution; see
            :mod:`repro.runtime.shard`).
    """

    kind: str
    name: str
    scale: float
    seed: int
    via_logs: bool = False
    shards: int = 1

    def __post_init__(self) -> None:
        if self.kind not in (KIND_SCENARIO, KIND_EXPERIMENT):
            raise SpecificationError("unknown job kind %r" % self.kind)
        if self.shards < 1:
            raise SpecificationError(
                "shard count must be >= 1, got %d" % self.shards
            )

    @classmethod
    def scenario(
        cls,
        name: str,
        scale: float,
        seed: int,
        via_logs: bool = False,
        shards: int = 1,
    ) -> "Job":
        """A job that simulates the named scenario."""
        return cls(
            KIND_SCENARIO, name, float(scale), int(seed), bool(via_logs),
            int(shards),
        )

    @classmethod
    def experiment(
        cls,
        name: str,
        scale: float,
        seed: int,
        via_logs: bool = False,
        shards: int = 1,
    ) -> "Job":
        """A job that runs the registered experiment ``name``."""
        return cls(
            KIND_EXPERIMENT, name, float(scale), int(seed), bool(via_logs),
            int(shards),
        )

    def canonical(self) -> str:
        """The canonical string the content-address is derived from.

        Embeds the package version so a new release invalidates every
        cached result, and the simulation-engine selection
        (``REPRO_VECTOR_ENGINE``) because the two engines produce
        statistically — not byte — equivalent results, so one flag's
        cached simulations must never be served to the other; floats
        use ``repr`` so the string is exact.

        Sharded jobs (``shards != 1``) append a ``shards=`` term —
        unsharded canonicals are unchanged, so existing cache entries
        stay addressable — because a sharded result carries a vista
        fleet (no disk object graph) and must never be served to a
        consumer that asked for the full unsharded result, even though
        its event table is byte-identical.

        A non-default hazard backend (``REPRO_HAZARD_BACKEND``) appends
        a ``hazard=<cache_token>`` term by the same append-only rule:
        the token content-addresses the backend's inputs (a trace
        backend digests its trace file), so re-recording a trace or
        switching specs can never serve a stale simulation, while
        default ``analytic`` canonicals — and every cache entry made
        before backends existed — are untouched.
        """
        canonical = (
            "repro/%s kind=%s name=%s scale=%r seed=%d via_logs=%d engine=%s"
            % (
                __version__,
                self.kind,
                self.name,
                float(self.scale),
                self.seed,
                1 if self.via_logs else 0,
                "vector" if envvars.get_flag("REPRO_VECTOR_ENGINE") else "legacy",
            )
        )
        if self.shards != 1:
            canonical += " shards=%d" % self.shards
        spec = envvars.get("REPRO_HAZARD_BACKEND")
        if spec and spec != "analytic":
            from repro.failures.backends import resolve

            canonical += " hazard=%s" % resolve(spec).cache_token()
        return canonical

    def key(self) -> str:
        """SHA-256 hex digest of :meth:`canonical` — the cache address."""
        return hashlib.sha256(self.canonical().encode("utf-8")).hexdigest()

    def simulation_job(self) -> "Job":
        """The scenario job this job's result is derived from.

        Scenario jobs are their own simulation; experiment jobs declare
        the default scenario at the same (scale, seed, via_logs).
        """
        if self.kind == KIND_SCENARIO:
            return self
        return Job.scenario(
            DEFAULT_SCENARIO, self.scale, self.seed, self.via_logs, self.shards
        )

    def payload(self) -> Dict[str, object]:
        """Picklable field dict (inverse of ``Job(**payload)``)."""
        return dataclasses.asdict(self)

    def describe(self) -> str:
        """Short human label, e.g. ``experiment:fig4b@0.05/s1``."""
        return "%s:%s@%g/s%d%s%s" % (
            self.kind,
            self.name,
            self.scale,
            self.seed,
            "/logs" if self.via_logs else "",
            "/x%d" % self.shards if self.shards != 1 else "",
        )


def execute_job(job: Job, runtime) -> object:
    """Actually compute ``job``'s result (no cache involvement).

    Scenario jobs return a
    :class:`~repro.simulate.engine.SimulationResult`; experiment jobs
    return an :class:`~repro.experiments.ExperimentResult`.  The runtime
    context is threaded into experiment contexts so nested scenario
    lookups (e.g. ablation experiments) go through the cache too.
    """
    if job.kind == KIND_SCENARIO:
        if job.shards != 1:
            from repro.runtime.shard import run_sharded_scenario

            return run_sharded_scenario(
                job.name,
                scale=job.scale,
                seed=job.seed,
                runtime=runtime,
                n_shards=job.shards,
                via_logs=job.via_logs,
            )
        from repro.simulate.scenario import run_scenario

        return run_scenario(
            job.name, scale=job.scale, seed=job.seed, via_logs=job.via_logs
        )
    from repro.experiments import ExperimentContext, run_experiment

    context = ExperimentContext(
        scale=job.scale,
        seed=job.seed,
        via_logs=job.via_logs,
        runtime=runtime,
        shards=job.shards,
    )
    return run_experiment(job.name, context)


#: Per-worker-process runtime contexts, keyed by config, so a pool
#: worker reuses one memory cache across every job it executes.
_WORKER_RUNTIMES: Dict[Tuple, object] = {}


def execute_payload(payload: Dict[str, object]) -> Tuple[object, Dict[str, object]]:
    """Worker entry point: run one job from its picklable payload.

    Returns ``(result, metrics snapshot)``; the parent merges the
    snapshot so counters like ``sim.runs`` and ``cache.hit`` stay
    accurate across processes.  The metrics registry is reset per call
    (the snapshot is a delta), while the cache persists per process.
    """
    from repro.runtime.context import RuntimeConfig, RuntimeContext

    config: Dict[str, object] = dict(payload["config"])  # type: ignore[arg-type]
    config_key = tuple(sorted(config.items()))
    runtime = _WORKER_RUNTIMES.get(config_key)
    if runtime is None:
        runtime = RuntimeContext(RuntimeConfig(jobs=1, **config))
        _WORKER_RUNTIMES[config_key] = runtime
    runtime.reset_metrics()
    job = Job(**payload["job"])  # type: ignore[arg-type]
    result = runtime.run_job(job)
    return result, runtime.metrics.snapshot()
