"""Central registry of ``REPRO_*`` environment variables.

Every environment variable the library honors is declared here, once,
with its default, parse kind, and consumer.  Library code reads the
environment exclusively through :func:`get` / :func:`get_flag` /
:func:`get_float`; raw ``os.environ`` access to a ``REPRO_*`` name
anywhere else under ``repro`` is a reprolint violation (rule RPL004,
see docs/LINTING.md).  Centralizing the reads buys three things:

* one authoritative list — ``make docs`` renders the markdown table
  committed at docs/ENVIRONMENT.md from this registry, and a unit test
  cross-checks that every registered variable appears there;
* typo safety — :func:`get` raises ``KeyError`` for names nobody
  registered, so a misspelled variable fails loudly instead of
  silently falling back to a default;
* consistent parsing — flag variables share one truthiness rule
  (:func:`get_flag`) instead of per-call-site reimplementations.

This module must stay stdlib-only: it is imported by ``repro.obs`` and
``repro.core.columns`` during package init, and by tooling that runs
without numpy installed.
"""

from __future__ import annotations

import dataclasses
import os
from typing import Dict, List, Optional

#: Flag values parsed as "off" (everything else, e.g. ``1``, is "on").
_FALSY = ("", "0", "false", "no")


@dataclasses.dataclass(frozen=True)
class EnvVar:
    """One registered environment variable.

    Attributes:
        name: the ``REPRO_*`` variable name.
        kind: ``path`` | ``flag`` | ``float`` | ``int`` | ``string`` —
            how consumers parse the raw value.
        default: human-readable default shown in docs (``None`` when
            the variable is simply unset by default).
        consumer: the module that acts on the value.
        description: one-line purpose, rendered into the docs table.
    """

    name: str
    kind: str
    default: Optional[str]
    consumer: str
    description: str


#: Every environment variable the library and its tooling honor.
REGISTRY: Dict[str, EnvVar] = {
    var.name: var
    for var in (
        EnvVar(
            name="REPRO_TRACE",
            kind="path",
            default=None,
            consumer="repro.obs",
            description="Default JSONL trace destination; enables tracing "
            "(same as the CLI's --trace).",
        ),
        EnvVar(
            name="REPRO_METRICS",
            kind="path",
            default=None,
            consumer="repro.obs",
            description="Default Prometheus textfile destination; enables "
            "metrics (same as --metrics).",
        ),
        EnvVar(
            name="REPRO_EVENTS",
            kind="path",
            default=None,
            consumer="repro.obs",
            description="Default fleet event stream destination; enables "
            "domain event emission (same as --events).",
        ),
        EnvVar(
            name="REPRO_PROFILE",
            kind="string",
            default=None,
            consumer="repro.obs.trace",
            description="Span-name prefix; matching spans dump per-span "
            "cProfile .pstats files.",
        ),
        EnvVar(
            name="REPRO_PROFILE_DIR",
            kind="path",
            default=".",
            consumer="repro.obs.trace",
            description="Directory where per-span profile dumps land.",
        ),
        EnvVar(
            name="REPRO_CACHE_DIR",
            kind="path",
            default="~/.cache/repro",
            consumer="repro.runtime.cache",
            description="On-disk location of the content-addressed result "
            "cache (same as --cache-dir).",
        ),
        EnvVar(
            name="REPRO_LEGACY_EVENTS",
            kind="flag",
            default="0",
            consumer="repro.core.columns",
            description="Force every analysis onto the legacy list-walking "
            "path instead of the columnar EventTable path (the escape hatch "
            "the differential golden tests flip).",
        ),
        EnvVar(
            name="REPRO_BENCH_ANALYSIS_SCALE",
            kind="float",
            default="0.5",
            consumer="benchmarks.test_bench_analysis",
            description="Fleet scale for the analysis benchmark suite "
            "(CI shrinks it to fit the job budget).",
        ),
        EnvVar(
            name="REPRO_VECTOR_ENGINE",
            kind="flag",
            default="0",
            consumer="repro.simulate.vector",
            description="Route make_engine/run_scenario through the "
            "batched (vectorized) simulation engine; the legacy per-unit "
            "engine stays the default and the differential oracle.",
        ),
        EnvVar(
            name="REPRO_BENCH_SIMULATE_SCALE",
            kind="float",
            default="0.4",
            consumer="benchmarks.test_bench_simulate",
            description="Fleet scale for the simulation benchmark suite "
            "(CI shrinks it to fit the job budget).",
        ),
        EnvVar(
            name="REPRO_SHARDS",
            kind="int",
            default="1",
            consumer="repro.cli",
            description="Default shard count for simulations (same as "
            "--shards); 1 runs unsharded, N>1 partitions the fleet into "
            "N spill-to-disk shards merged byte-identically.",
        ),
        EnvVar(
            name="REPRO_SHARD_SPILL_DIR",
            kind="path",
            default=None,
            consumer="repro.runtime.shard",
            description="Where sharded runs spill per-shard EventTable "
            ".npz files (default: a shards/ directory under the result "
            "cache).",
        ),
        EnvVar(
            name="REPRO_TRACE_WORKERS",
            kind="flag",
            default="1",
            consumer="repro.obs",
            description="When tracing is on, ship a TraceContext into "
            "pool workers so they flush per-process trace segments the "
            "parent merges into one clock-aligned trace; set 0 to trace "
            "only the parent's pool spans.",
        ),
        EnvVar(
            name="REPRO_SAMPLE_INTERVAL",
            kind="float",
            default="0.5",
            consumer="repro.obs.sampler",
            description="Seconds between resource-sampler ticks (RSS/CPU "
            "timeline) and the minimum spacing of throttled progress "
            "heartbeats.",
        ),
        EnvVar(
            name="REPRO_MONITOR_PORT",
            kind="int",
            default="8765",
            consumer="repro.cli",
            description="Default TCP port for `repro obs serve`, the live "
            "run monitor (/status JSON + /metrics Prometheus textfile).",
        ),
        EnvVar(
            name="REPRO_HAZARD_BACKEND",
            kind="string",
            default="analytic",
            consumer="repro.failures.backends",
            description="Default hazard backend spec for both engines "
            "(same as --hazard-backend): `analytic`, `trace:<events>`, "
            "or `fitted:<events>`.",
        ),
        EnvVar(
            name="REPRO_STATUS_DIR",
            kind="path",
            default=None,
            consumer="repro.obs.sampler",
            description="Directory for live heartbeat-<pid>.json status "
            "records; setting it enables progress heartbeats from the "
            "driver and every worker, which `repro obs watch`/`serve` "
            "read while the run is in flight.",
        ),
    )
}


def get(name: str, default: Optional[str] = None) -> Optional[str]:
    """The raw environment value of a *registered* variable.

    Args:
        name: a key of :data:`REGISTRY`.
        default: returned when the variable is unset or empty.

    Raises:
        KeyError: when ``name`` was never registered — add it to
            :data:`REGISTRY` (and docs/ENVIRONMENT.md) first.
    """
    if name not in REGISTRY:
        raise KeyError(
            "unregistered environment variable %r; add it to "
            "repro.envvars.REGISTRY" % (name,)
        )
    value = os.environ.get(name)
    if value is None or value == "":
        return default
    return value


def get_flag(name: str, default: bool = False) -> bool:
    """Parse a registered variable as an on/off flag.

    ``0``, ``false``, and ``no`` (any case) are off; anything else is
    on; unset or empty falls back to ``default`` (off unless the
    variable is registered default-on, like ``REPRO_TRACE_WORKERS``).
    """
    value = get(name)
    if value is None:
        return default
    return value.strip().lower() not in _FALSY


def get_float(name: str, default: float) -> float:
    """Parse a registered variable as a float, falling back on absence."""
    value = get(name)
    if value is None:
        return default
    return float(value)


def get_int(name: str, default: int) -> int:
    """Parse a registered variable as an int, falling back on absence."""
    value = get(name)
    if value is None:
        return default
    return int(value)


class _Override:
    """Handle of one :func:`override` write; restores on exit.

    Usable three ways, all backward compatible with the original
    plain-setter ``override``:

    * fire-and-forget: ``envvars.override(name, value)`` — the write
      sticks (the handle is simply dropped);
    * scoped: ``with envvars.override(name, value): ...`` — the prior
      value (or absence) is restored on exit, exceptions included;
    * nested: inner ``with`` blocks capture the outer block's value,
      so unwinding restores each layer in LIFO order.
    """

    def __init__(self, name: str, value: Optional[str]) -> None:
        self.name = name
        self.value = value
        self._had_prior = name in os.environ
        self._prior = os.environ.get(name)
        if value is None:
            os.environ.pop(name, None)
        else:
            os.environ[name] = value

    def __enter__(self) -> "_Override":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.restore()

    def restore(self) -> None:
        """Put back the value captured when the override was applied."""
        if self._had_prior:
            os.environ[self.name] = self._prior  # type: ignore[assignment]
        else:
            os.environ.pop(self.name, None)


def override(name: str, value: Optional[str]) -> _Override:
    """Set (or, with ``None``, clear) a *registered* variable.

    The CLI funnels flag values that must reach pool workers —
    ``--hazard-backend``, engine selection — through here instead of
    touching ``os.environ`` directly, keeping every write inside the
    registry's typo check (and this RPL004-exempt module).

    Returns a handle that is also a context manager: used bare, the
    write persists (the historical behavior); used in a ``with``
    statement, the prior value is restored on exit — including on
    exception unwind — and nested overrides restore in LIFO order.

    Raises:
        KeyError: when ``name`` was never registered.
    """
    if name not in REGISTRY:
        raise KeyError(
            "unregistered environment variable %r; add it to "
            "repro.envvars.REGISTRY" % (name,)
        )
    return _Override(name, value)


def markdown_table() -> str:
    """The authoritative ``REPRO_*`` table (docs/ENVIRONMENT.md body)."""
    rows: List[str] = [
        "| Variable | Kind | Default | Consumer | Purpose |",
        "| --- | --- | --- | --- | --- |",
    ]
    for name in sorted(REGISTRY):
        var = REGISTRY[name]
        default = "`%s`" % var.default if var.default is not None else "unset"
        rows.append(
            "| `%s` | %s | %s | `%s` | %s |"
            % (var.name, var.kind, default, var.consumer, var.description)
        )
    return "\n".join(rows)


def undocumented(doc_text: str) -> List[str]:
    """Registered variables missing from ``doc_text`` (docs cross-check)."""
    return [name for name in sorted(REGISTRY) if name not in doc_text]


def render_docs() -> str:
    """The full generated docs/ENVIRONMENT.md contents."""
    return (
        "# Environment variables\n"
        "\n"
        "<!-- Generated from src/repro/envvars.py by `make docs`; do "
        "not edit by hand. -->\n"
        "\n"
        "Every `REPRO_*` environment variable the library honors, "
        "generated from the\n"
        "single authoritative registry in `src/repro/envvars.py`.  "
        "Library code may\n"
        "only read these through `repro.envvars.get` / `get_flag` / "
        "`get_float`;\n"
        "reprolint rule RPL004 (see [LINTING.md](LINTING.md)) enforces "
        "this.\n"
        "\n" + markdown_table() + "\n"
    )


__all__ = [
    "EnvVar",
    "REGISTRY",
    "get",
    "get_flag",
    "get_float",
    "get_int",
    "markdown_table",
    "override",
    "render_docs",
    "undocumented",
]


if __name__ == "__main__":
    print(render_docs(), end="")
