"""Command-line interface: run experiments, render reports, export logs.

Usage::

    repro list                          # experiments and scenarios
    repro run fig4b [--scale --seed]    # one experiment (or "all")
    repro run all --jobs 4              # fan out over worker processes
    repro run fig4a --shards 4          # sharded spill/merge simulation
    repro findings [--scale --seed]     # the Findings 1-11 scoreboard
    repro report [--scale --seed]       # overview + headline figures
    repro cache stats                   # result cache contents
    repro cache clear                   # drop every cached result
    repro simulate paper-default --out logs/   # export an AutoSupport
                                                # style log archive
    repro run all --trace t.jsonl --metrics m.prom   # traced run
    repro run fig4b --events e.jsonl    # record the fleet event stream
    repro obs summary t1.jsonl t2.jsonl # per-span timing table (merged)
    repro obs report --trace t.jsonl --events e.jsonl --out r.html
    repro obs snapshot --trace t.jsonl --out snap.json
    repro obs diff base.json snap.json --fail-on p95:50%

Experiment and findings runs route through :mod:`repro.runtime`: results
are memoized in a content-addressed on-disk cache (``--no-cache`` keeps
it memory-only, ``--cache-dir`` relocates it) and ``--jobs N`` executes
independent experiments on a process pool — with byte-identical output
to serial.  A runtime-metrics footer (job counts, cache hits,
simulations performed, latencies) is printed to stderr so stdout stays
stable across cache states and ``--jobs`` values.  ``--shards N`` (or
``$REPRO_SHARDS``) partitions the fleet so no process holds more than
one slice: each shard simulates its cell subset, spills its event
table to disk, and the merged result is byte-identical to the
unsharded run (see docs/RUNTIME.md, "Sharded runs").

Observability (see docs/OBSERVABILITY.md): ``--trace FILE`` records a
JSONL span trace of the whole command, ``--metrics FILE`` writes a
Prometheus textfile merging the observer's series with the runtime's
counters, and ``--events FILE`` records the schema-versioned fleet
event stream (failures / repairs / rebuilds with their paper-facing
dimensions); ``$REPRO_TRACE`` / ``$REPRO_METRICS`` / ``$REPRO_EVENTS``
set the same defaults, and ``$REPRO_PROFILE=<span prefix>`` adds
per-span cProfile dumps.  ``repro obs`` post-processes those
artifacts: ``summary`` renders per-span count/total/p50/p95 tables
(multiple traces merge before percentiles), ``report`` produces one
self-contained HTML file, ``snapshot`` distills a run into committable
JSON, and ``diff`` compares two snapshots — with ``--fail-on p95:50%``
it exits non-zero on regression, which is the CI gate.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro import obs
from repro.core.findings import evaluate_findings
from repro.core.report import format_findings, format_overview
from repro.errors import ReproError
from repro.experiments import EXPERIMENTS
from repro.simulate.scenario import SCENARIOS, run_scenario
from repro.version import __version__


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of the FAST '08 storage subsystem "
        "failure study on a simulated fleet.",
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list experiments and scenarios")

    run_cmd = sub.add_parser("run", help="run one experiment (or 'all')")
    run_cmd.add_argument("experiment", help="experiment id, or 'all'")
    _common(run_cmd)

    findings_cmd = sub.add_parser("findings", help="evaluate Findings 1-11")
    _common(findings_cmd)

    report_cmd = sub.add_parser("report", help="fleet overview report")
    _common(report_cmd)

    sim_cmd = sub.add_parser("simulate", help="export a log archive")
    sim_cmd.add_argument("scenario", choices=sorted(SCENARIOS))
    sim_cmd.add_argument("--out", required=True, help="output directory")
    _common(sim_cmd)

    predict_cmd = sub.add_parser(
        "predict", help="train and evaluate a failure predictor"
    )
    predict_cmd.add_argument(
        "--horizon-days", type=float, default=14.0,
        help="prediction horizon (days)",
    )
    _common(predict_cmd)

    export_cmd = sub.add_parser("export", help="export failure events to CSV")
    export_cmd.add_argument("--out", required=True, help="output CSV path")
    _common(export_cmd)

    plot_cmd = sub.add_parser(
        "plot", help="render Fig. 9 as an ASCII CDF plot"
    )
    plot_cmd.add_argument(
        "--scope", choices=("shelf", "raid_group"), default="shelf"
    )
    plot_cmd.add_argument("--width", type=int, default=72)
    _common(plot_cmd)

    doctor_cmd = sub.add_parser(
        "doctor", help="validate the calibration tables and a dataset"
    )
    _common(doctor_cmd)

    fit_cmd = sub.add_parser(
        "fit-hazards",
        help="fit interarrival distributions to a recorded failure trace",
    )
    fit_cmd.add_argument(
        "events",
        help="failure trace: an --events JSONL stream or an EventTable .npz",
    )
    fit_cmd.add_argument(
        "--alpha", type=float, default=0.01,
        help="KS-gate significance level for the re-simulated CDF check",
    )
    fit_cmd.add_argument(
        "--seed", type=int, default=0, help="re-simulation seed for the gate"
    )

    batch_cmd = sub.add_parser(
        "batch", help="multi-seed run: headline metrics with seed spread"
    )
    batch_cmd.add_argument(
        "--seeds", default="1,2,3", help="comma-separated seeds"
    )
    _common(batch_cmd)

    cache_cmd = sub.add_parser(
        "cache", help="inspect or clear the result cache"
    )
    cache_cmd.add_argument("action", choices=("stats", "clear"))
    _cache_dir_option(cache_cmd)
    _obs_flags(cache_cmd)

    obs_cmd = sub.add_parser(
        "obs",
        help="inspect recorded runs: summaries, HTML reports, regression "
        "diffs (see docs/OBSERVABILITY.md)",
    )
    obs_sub = obs_cmd.add_subparsers(dest="obs_action", required=True)

    summary_cmd = obs_sub.add_parser(
        "summary", help="per-span timing table from one or more traces"
    )
    summary_cmd.add_argument(
        "trace_file", nargs="+",
        help="JSONL trace(s) written by --trace; several files merge "
        "before percentile computation",
    )
    summary_cmd.add_argument(
        "--metrics", default=None, metavar="FILE",
        help="Prometheus textfile to scan for label-overflow warnings",
    )

    report_cmd = obs_sub.add_parser(
        "report", help="render trace + metrics + events as one HTML file"
    )
    report_cmd.add_argument("--trace", default=None, metavar="FILE",
                            help="JSONL span trace")
    report_cmd.add_argument("--metrics", default=None, metavar="FILE",
                            help="Prometheus textfile")
    report_cmd.add_argument("--events", default=None, metavar="FILE",
                            help="fleet event stream (from --events)")
    report_cmd.add_argument("--out", required=True, metavar="FILE",
                            help="output HTML path")
    report_cmd.add_argument("--title", default="repro run report")

    diff_cmd = obs_sub.add_parser(
        "diff", help="compare two run snapshots (or raw traces)"
    )
    diff_cmd.add_argument("base", help="baseline snapshot .json or trace .jsonl")
    diff_cmd.add_argument("candidate", help="candidate snapshot or trace")
    diff_cmd.add_argument(
        "--fail-on", default=None, metavar="STAT:PCT%",
        help="exit non-zero when any span's STAT (mean/p50/p95/max/"
        "total/count) grew more than PCT%% (e.g. p95:50%%)",
    )
    diff_cmd.add_argument(
        "--min-seconds", type=float, default=None, metavar="S",
        help="ignore spans whose baseline stat is under S seconds "
        "(default 0.001; scheduler noise dominates below that)",
    )

    snapshot_cmd = obs_sub.add_parser(
        "snapshot", help="distill trace + metrics into a diffable snapshot"
    )
    snapshot_cmd.add_argument("--trace", default=None, metavar="FILE",
                              help="JSONL span trace")
    snapshot_cmd.add_argument("--metrics", default=None, metavar="FILE",
                              help="Prometheus textfile")
    snapshot_cmd.add_argument("--out", required=True, metavar="FILE",
                              help="output snapshot .json path")
    snapshot_cmd.add_argument("--label", default=None,
                              help="label recorded in the snapshot")

    watch_cmd = obs_sub.add_parser(
        "watch",
        help="live TTY status of a monitored run (heartbeat directory)",
    )
    watch_cmd.add_argument("--dir", dest="status_dir", default=None,
                           metavar="DIR",
                           help="heartbeat directory (default: "
                                "$REPRO_STATUS_DIR)")
    watch_cmd.add_argument("--interval", type=float, default=None,
                           metavar="SECONDS",
                           help="refresh period (default: the run's "
                                "$REPRO_SAMPLE_INTERVAL)")
    watch_cmd.add_argument("--once", action="store_true",
                           help="print one snapshot and exit")
    watch_cmd.add_argument("--json", dest="as_json", action="store_true",
                           help="emit the raw /status JSON payload instead "
                                "of the table")

    serve_cmd = obs_sub.add_parser(
        "serve",
        help="HTTP run monitor: /status JSON + /metrics Prometheus textfile",
    )
    serve_cmd.add_argument("--dir", dest="status_dir", default=None,
                           metavar="DIR",
                           help="heartbeat directory (default: "
                                "$REPRO_STATUS_DIR)")
    serve_cmd.add_argument("--port", type=int, default=None,
                           help="TCP port (default: $REPRO_MONITOR_PORT "
                                "or 8765; 0 picks a free port)")
    serve_cmd.add_argument("--host", default="127.0.0.1",
                           help="bind address (default: 127.0.0.1)")
    serve_cmd.add_argument("--metrics", default=None, metavar="FILE",
                           help="Prometheus textfile served at /metrics "
                                "(default: $REPRO_METRICS)")
    return parser


def _common(cmd: argparse.ArgumentParser) -> None:
    cmd.add_argument("--scale", type=float, default=0.05,
                     help="fleet scale vs the paper's 39,000 systems")
    cmd.add_argument("--seed", type=int, default=1, help="root random seed")
    cmd.add_argument(
        "--via-logs",
        action="store_true",
        help="route the dataset through the AutoSupport log pipeline",
    )
    cmd.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes (1 = serial; results are identical)",
    )
    cmd.add_argument(
        "--shards", type=int, default=None, metavar="N",
        help="partition each simulation into N spill-to-disk shards "
        "merged byte-identically (default: $REPRO_SHARDS or 1; pair "
        "with --jobs to run shards in parallel)",
    )
    cmd.add_argument(
        "--no-cache",
        action="store_true",
        help="skip the on-disk result cache (results are still shared "
        "in memory within this run)",
    )
    cmd.add_argument(
        "--hazard-backend", default=None, metavar="SPEC",
        help="hazard backend for both engines: analytic, trace:<events>, "
        "or fitted:<events> (default: $REPRO_HAZARD_BACKEND or analytic)",
    )
    _cache_dir_option(cmd)
    _obs_flags(cmd)


def _cache_dir_option(cmd: argparse.ArgumentParser) -> None:
    cmd.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="result cache directory "
        "(default: $REPRO_CACHE_DIR or ~/.cache/repro)",
    )


def _obs_flags(cmd: argparse.ArgumentParser) -> None:
    cmd.add_argument(
        "--trace", default=None, metavar="FILE",
        help="record a JSONL span trace of this command "
        "(default: $REPRO_TRACE)",
    )
    cmd.add_argument(
        "--metrics", default=None, metavar="FILE",
        help="write a Prometheus textfile of counters/histograms "
        "(default: $REPRO_METRICS)",
    )
    cmd.add_argument(
        "--events", default=None, metavar="FILE",
        help="record the fleet event stream (failures/repairs/rebuilds) "
        "as JSONL (default: $REPRO_EVENTS)",
    )


def _runtime(args: argparse.Namespace):
    """Build the runtime context a command's flags describe."""
    from repro.runtime import RuntimeConfig, RuntimeContext

    return RuntimeContext(
        RuntimeConfig(
            jobs=args.jobs,
            cache_dir=args.cache_dir,
            cache_persist=not args.no_cache,
        )
    )


def _shards(args: argparse.Namespace) -> int:
    """The effective shard count: ``--shards``, else ``$REPRO_SHARDS``."""
    from repro import envvars

    if getattr(args, "shards", None) is not None:
        return int(args.shards)
    return envvars.get_int("REPRO_SHARDS", 1)


def _print_metrics(runtime) -> None:
    """The runtime-metrics footer; on stderr so stdout stays stable."""
    print(runtime.metrics.report(), file=sys.stderr)


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if getattr(args, "hazard_backend", None):
        # Funnel through the registry so the spec reaches pool workers
        # (they re-resolve from the environment) with the typo check on.
        from repro import envvars

        envvars.override("REPRO_HAZARD_BACKEND", args.hazard_backend)
    sampler = None
    if args.command not in ("obs", "fit-hazards"):
        # ``repro obs`` and ``repro fit-hazards`` *read* trace/metrics/
        # events files named with the same flags; configuring the
        # observer from them would clobber those inputs on export.
        obs.configure(
            trace=getattr(args, "trace", None),
            metrics=getattr(args, "metrics", None),
            events=getattr(args, "events", None),
        )
        sampler = _start_sampler(args.command)
    try:
        with obs.span("cli.%s" % args.command):
            return _dispatch(args)
    except ReproError as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 2
    finally:
        if sampler is not None:
            sampler.stop()
        for kind, path in sorted(obs.export().items()):
            print("obs: wrote %s to %s" % (kind, path), file=sys.stderr)


def _start_sampler(command: str):
    """Start the resource sampler for a data command, when warranted.

    Runs whenever the observer is enabled (the timeline folds into the
    metrics export) or ``$REPRO_STATUS_DIR`` asks for live heartbeats;
    stays completely off — no thread, no counters — otherwise.
    """
    from repro.obs.sampler import PROGRESS, ResourceSampler, status_directory

    status_dir = status_directory()
    if not (obs.OBSERVER.enabled or status_dir):
        return None
    PROGRESS.configure(directory=status_dir, role="driver", command=command)
    return ResourceSampler(
        registry=obs.OBSERVER.registry, directory=status_dir
    ).start()


def _dispatch(args: argparse.Namespace) -> int:
    if args.command == "list":
        print("experiments:")
        for experiment_id, (title, _runner) in sorted(EXPERIMENTS.items()):
            print("  %-16s %s" % (experiment_id, title))
        print("scenarios:")
        for name, scenario in sorted(SCENARIOS.items()):
            print("  %-16s %s" % (name, scenario.description))
        return 0

    if args.command == "run":
        from repro.errors import SpecificationError
        from repro.runtime import Job, Scheduler

        ids = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
        for experiment_id in ids:
            if experiment_id not in EXPERIMENTS:
                raise SpecificationError(
                    "unknown experiment %r (have: %s)"
                    % (experiment_id, ", ".join(sorted(EXPERIMENTS)))
                )
        runtime = _runtime(args)
        results = Scheduler(runtime).run(
            [
                Job.experiment(
                    experiment_id,
                    scale=args.scale,
                    seed=args.seed,
                    via_logs=args.via_logs,
                    shards=_shards(args),
                )
                for experiment_id in ids
            ]
        )
        all_passed = True
        for experiment_id, result in zip(ids, results):
            print(result.text)
            verdict = "PASS" if result.passed else "FAIL"
            print(
                "[%s] %s: %d/%d checks"
                % (
                    verdict,
                    experiment_id,
                    sum(result.checks.values()),
                    len(result.checks),
                )
            )
            if not result.passed:
                print("  failed: %s" % ", ".join(result.failed_checks()))
                all_passed = False
            print()
        _print_metrics(runtime)
        return 0 if all_passed else 1

    if args.command == "findings":
        runtime = _runtime(args)
        dataset = _dataset(args, runtime)
        findings = evaluate_findings(dataset)
        print(format_findings(findings))
        _print_metrics(runtime)
        return 0 if all(f.passed for f in findings) else 1

    if args.command == "report":
        dataset = _dataset(args)
        print(format_overview(dataset))
        print()
        from repro.core.breakdown import afr_by_class
        from repro.core.report import format_breakdown

        print(
            format_breakdown(
                "AFR by class (excluding the problematic disk family)",
                afr_by_class(dataset, exclude_problematic_family=True),
            )
        )
        return 0

    if args.command == "simulate":
        result = run_scenario(
            args.scenario, scale=args.scale, seed=args.seed, via_logs=True
        )
        assert result.archive is not None  # via_logs=True guarantees it
        result.archive.save_to(args.out)
        print(
            "wrote %d system logs (%d lines) + snapshot to %s"
            % (len(result.archive.logs), result.archive.total_lines(), args.out)
        )
        return 0

    if args.command == "predict":
        from repro.predict import PredictorConfig, train_failure_predictor

        result = run_scenario("paper-default", scale=args.scale, seed=args.seed)
        _model, report = train_failure_predictor(
            result.injection,
            PredictorConfig(horizon_days=args.horizon_days),
        )
        print(report.summary())
        return 0

    if args.command == "export":
        from repro.core.export import events_to_csv

        dataset = _dataset(args)
        with open(args.out, "w") as handle:
            handle.write(events_to_csv(dataset))
        print("wrote %d events to %s" % (len(dataset.events), args.out))
        return 0

    if args.command == "plot":
        from repro.core.plots import figure9_ascii

        dataset = _dataset(args)
        print(figure9_ascii(dataset, args.scope, width=args.width))
        return 0

    if args.command == "doctor":
        from repro.core.validate import doctor

        report = doctor(_dataset(args))
        print(report)
        return 0 if "no issues" in report else 1

    if args.command == "batch":
        from repro.core.afr import dataset_afr
        from repro.core.timebetween import analyze_gaps
        from repro.failures.types import FailureType
        from repro.simulate.batch import batch_run

        seeds = tuple(int(seed) for seed in args.seeds.split(","))
        spreads = batch_run(
            {
                "subsystem_afr_pct": lambda ds: dataset_afr(ds).percent,
                "disk_afr_pct": lambda ds: dataset_afr(
                    ds, FailureType.DISK
                ).percent,
                "shelf_burst_fraction": lambda ds: analyze_gaps(
                    ds, "shelf", None
                ).burst_fraction,
            },
            scale=args.scale,
            seeds=seeds,
            runtime=_runtime(args),
        )
        print("Seed spread over seeds %s (scale %.3f):" % (seeds, args.scale))
        for spread in spreads.values():
            print(
                "  %-22s %.4g +/- %.2g  (rel %.1f%%)"
                % (
                    spread.name,
                    spread.mean,
                    spread.std,
                    100.0 * spread.relative_std,
                )
            )
        return 0

    if args.command == "fit-hazards":
        return _dispatch_fit_hazards(args)

    if args.command == "obs":
        return _dispatch_obs(args)

    if args.command == "cache":
        from repro.runtime import ResultCache

        cache = ResultCache(directory=args.cache_dir)
        if args.action == "clear":
            removed = cache.clear()
            print(
                "removed %d cached result(s) from %s"
                % (removed, cache.directory)
            )
            return 0
        stats = cache.stats()
        print("cache directory: %s" % stats.directory)
        print("entries:         %d" % stats.entries)
        print("size:            %.1f KiB" % (stats.size_bytes / 1024.0))
        return 0

    raise AssertionError("unreachable command %r" % args.command)


def _dispatch_fit_hazards(args: argparse.Namespace) -> int:
    from repro.failures.backends.fitted import FittedBackend
    from repro.failures.types import ALL_FAILURE_TYPES

    backend = FittedBackend(args.events)
    print("fit-hazards: %s" % args.events)
    failed = False
    for failure_type in ALL_FAILURE_TYPES:
        key = failure_type.value
        gaps = backend.gaps.get(key)
        if gaps is None:
            continue
        print("%s: %d interarrival gap(s)" % (failure_type.label, gaps.size))
        fit = backend.fits.get(key)
        if fit is not None:
            params = ", ".join(
                "%s=%.6g" % (name, value)
                for name, value in sorted(fit.params.items())
            )
            print(
                "  best fit: %s (%s)  loglik=%.2f  aic=%.2f"
                % (fit.name, params, fit.log_likelihood, fit.aic)
            )
            gate = backend.ks_gate(
                failure_type, alpha=args.alpha, seed=args.seed
            )
            verdict = "PASS" if gate.passed else "FAIL"
            print(
                "  KS gate: %s  D=%.4f  p=%.4g  (alpha=%g)"
                % (verdict, gate.statistic, gate.p_value, gate.alpha)
            )
            failed = failed or not gate.passed
        for error in backend.fit_errors.get(key, ()):
            print("  no %s fit: %s" % (error.name, error.reason))
    return 1 if failed else 0


def _dispatch_obs(args: argparse.Namespace) -> int:
    from repro.errors import SpecificationError

    def warn(message: str) -> None:
        print("warning: %s" % message, file=sys.stderr)

    if args.obs_action == "summary":
        try:
            events = obs.read_traces(args.trace_file, strict=False, warn=warn)
        except OSError as exc:
            raise SpecificationError("cannot read trace: %s" % exc) from exc
        title = "trace summary: %s" % ", ".join(args.trace_file)
        print(obs.render_trace_summary(events, title=title))
        if args.metrics:
            try:
                metrics = obs.load_metrics(args.metrics)
            except OSError as exc:
                raise SpecificationError(
                    "cannot read metrics %r: %s" % (args.metrics, exc)
                ) from exc
            for key, value in sorted(metrics["counters"].items()):
                name, labels = _split_metric_key(key)
                if name.endswith(obs.LABELS_DROPPED.replace(".", "_")):
                    warn(
                        "metric %s overflowed the label-set cap; %d "
                        "increment(s) collapsed into the overflow series"
                        % (labels.get("metric", "?"), int(value))
                    )
        return 0

    if args.obs_action == "report":
        from repro.obs.report import render_report, write_report

        if not (args.trace or args.metrics or args.events):
            raise SpecificationError(
                "obs report needs at least one of --trace/--metrics/--events"
            )
        try:
            trace_events = (
                obs.read_traces([args.trace], strict=False, warn=warn)
                if args.trace else None
            )
            metrics = obs.load_metrics(args.metrics) if args.metrics else None
            fleet_events = (
                obs.read_events(args.events, strict=False, warn=warn)
                if args.events else None
            )
        except (OSError, ValueError) as exc:
            raise SpecificationError("cannot read input: %s" % exc) from exc
        sources = [p for p in (args.trace, args.metrics, args.events) if p]
        html_text = render_report(
            trace_events=trace_events,
            metrics=metrics,
            fleet_events=fleet_events,
            title=args.title,
            subtitle=" + ".join(sources),
        )
        write_report(args.out, html_text)
        print("wrote report to %s" % args.out)
        return 0

    if args.obs_action == "snapshot":
        from repro.obs.diff import build_snapshot, write_snapshot

        if not (args.trace or args.metrics):
            raise SpecificationError(
                "obs snapshot needs at least one of --trace/--metrics"
            )
        try:
            snapshot = build_snapshot(
                trace_path=args.trace,
                metrics_path=args.metrics,
                label=args.label,
            )
        except (OSError, ValueError) as exc:
            raise SpecificationError("cannot read input: %s" % exc) from exc
        write_snapshot(args.out, snapshot)
        print(
            "wrote snapshot (%d spans, %d counters) to %s"
            % (len(snapshot["spans"]), len(snapshot["counters"]), args.out)
        )
        return 0

    if args.obs_action == "diff":
        from repro.obs.diff import (
            DEFAULT_MIN_SECONDS,
            diff_snapshots,
            load_snapshot,
            parse_fail_on,
            render_diff,
        )

        try:
            fail_on = parse_fail_on(args.fail_on) if args.fail_on else None
        except ValueError as exc:
            raise SpecificationError(str(exc)) from exc
        try:
            base = load_snapshot(args.base)
            candidate = load_snapshot(args.candidate)
        except (OSError, ValueError) as exc:
            raise SpecificationError("cannot load snapshot: %s" % exc) from exc
        min_seconds = (
            args.min_seconds if args.min_seconds is not None
            else DEFAULT_MIN_SECONDS
        )
        result = diff_snapshots(
            base, candidate, fail_on=fail_on, min_seconds=min_seconds
        )
        print(
            render_diff(
                result,
                base_label=str(base.get("label") or args.base),
                new_label=str(candidate.get("label") or args.candidate),
            )
        )
        return 1 if result.failed else 0

    if args.obs_action in ("watch", "serve"):
        from repro import envvars
        from repro.obs.sampler import sample_interval, status_directory

        status_dir = args.status_dir or status_directory()
        if not status_dir:
            raise SpecificationError(
                "obs %s needs --dir or $REPRO_STATUS_DIR (point it at the "
                "run's heartbeat directory)" % args.obs_action
            )
        if args.obs_action == "watch":
            from repro.obs.monitor import watch

            interval = (
                args.interval if args.interval is not None
                else max(0.2, sample_interval())
            )
            return watch(
                status_dir,
                interval=interval,
                once=args.once,
                as_json=args.as_json,
            )
        from repro.obs.monitor import DEFAULT_PORT, ENV_MONITOR_PORT, make_server

        port = (
            args.port if args.port is not None
            else envvars.get_int(ENV_MONITOR_PORT, DEFAULT_PORT)
        )
        metrics_path = args.metrics or envvars.get(obs.ENV_METRICS)
        server = make_server(
            status_dir, port=port, metrics_path=metrics_path, host=args.host
        )
        host, bound_port = server.server_address[:2]
        print(
            "serving run monitor on http://%s:%d (endpoints: /status, "
            "/metrics; Ctrl-C to stop)" % (host, bound_port),
            file=sys.stderr,
        )
        try:
            server.serve_forever()
        except KeyboardInterrupt:
            pass
        finally:
            server.server_close()
        return 0

    raise AssertionError("unreachable obs action %r" % args.obs_action)


def _split_metric_key(key: str) -> tuple:
    """Split a flattened ``name{k=v,...}`` metric key into name + labels."""
    if "{" not in key:
        return key, {}
    name, _, rest = key.partition("{")
    labels = {}
    for part in rest.rstrip("}").split(","):
        if part:
            label, _, value = part.partition("=")
            labels[label] = value
    return name, labels


def _dataset(args: argparse.Namespace, runtime=None):
    if runtime is None:
        runtime = _runtime(args)
    return runtime.run_scenario(
        "paper-default",
        scale=args.scale,
        seed=args.seed,
        via_logs=args.via_logs,
        shards=_shards(args),
    ).dataset


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
