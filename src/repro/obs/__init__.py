"""repro.obs — process-wide tracing, metrics, and profiling.

One observer per process, off by default.  Library code instruments
itself unconditionally through the module-level helpers — a disabled
observer reduces every call to a single attribute check::

    from repro import obs

    with obs.span("simulate.fleet", scenario=name):
        ...
    obs.inc("sim.events", len(events))
    obs.observe("inject.system", seconds)

Enable it explicitly (the CLI does this from ``--trace`` /
``--metrics``, or the ``REPRO_TRACE`` / ``REPRO_METRICS`` env vars)::

    obs.configure(trace="t.jsonl", metrics="m.prom")
    ...
    obs.export()        # flush the JSONL trace + Prometheus textfile

Components with their own registries (the runtime's
:class:`~repro.runtime.RuntimeMetrics`) call
:func:`register_metrics`; :func:`export` folds their snapshots into
the exported textfile, so one ``m.prom`` carries cache hit rates and
span timings alike.  Profiling: set ``REPRO_PROFILE=<span prefix>``
(e.g. ``REPRO_PROFILE=simulate.``) and matching spans dump per-span
``.pstats`` files.  See docs/OBSERVABILITY.md.
"""

from __future__ import annotations

import os
import tempfile
from typing import Dict, List, Optional

from repro import envvars
from repro.obs.events import (
    EVENTS_SCHEMA_VERSION,
    FleetEventLog,
    read_events,
    read_events_meta,
)
from repro.obs.exporters import (
    load_metrics,
    load_trace_summary,
    parse_prometheus,
    percentile,
    read_trace,
    read_traces,
    render_prometheus,
    render_trace_summary,
    summarize_trace,
    write_metrics,
)
from repro.obs.registry import (
    DEFAULT_BOUNDS,
    DEFAULT_MAX_LABEL_SETS,
    Histogram,
    LABELS_DROPPED,
    MetricsRegistry,
    OVERFLOW_LABEL,
    merged,
    parse_series_key,
    series_key,
)
from repro.obs.trace import NULL_SPAN, NullSpan, Span, TraceContext, Tracer

#: Environment variables the CLI and :func:`configure` honor.
ENV_TRACE = "REPRO_TRACE"
ENV_METRICS = "REPRO_METRICS"
ENV_PROFILE = "REPRO_PROFILE"
ENV_EVENTS = "REPRO_EVENTS"
#: Ship a TraceContext into pool workers (default on; set 0 to keep
#: worker processes dark and trace only the parent's pool spans).
ENV_TRACE_WORKERS = "REPRO_TRACE_WORKERS"


class Observer:
    """The process-wide observability state: tracer, registry, event log.

    Attributes:
        tracer: span collector (``tracer.enabled`` is the master
            tracing switch the hot-path guard checks).
        registry: the observer's own metrics registry.
        fleet_events: the domain event stream (failures / repairs /
            rebuilds from the simulation engine and failure injector).
        trace_path / metrics_path / events_path: where :meth:`export`
            writes.
    """

    def __init__(self) -> None:
        self.tracer = Tracer(enabled=False)
        self.registry = MetricsRegistry(enabled=False)
        self.fleet_events = FleetEventLog(enabled=False)
        self.trace_path: Optional[str] = None
        self.metrics_path: Optional[str] = None
        self.events_path: Optional[str] = None
        self._segment_dir: Optional[str] = None
        # Strong references on purpose: the CLI exports in a ``finally``
        # after the owning RuntimeContext has gone out of scope, so a
        # weak set would drop its metrics right before the write.
        # Registration only happens while the observer is enabled, and
        # :meth:`reset` clears the list, so this cannot grow unbounded.
        self._extra: List[MetricsRegistry] = []

    @property
    def enabled(self) -> bool:
        """Whether any instrumentation is live."""
        return (
            self.tracer.enabled
            or self.registry.enabled
            or self.fleet_events.enabled
        )

    def configure(
        self,
        trace: Optional[str] = None,
        metrics: Optional[str] = None,
        enable: Optional[bool] = None,
        profile: Optional[str] = None,
        events: Optional[str] = None,
    ) -> "Observer":
        """Enable and target the observer.

        Args:
            trace: JSONL trace destination (enables tracing).
            metrics: Prometheus textfile destination (enables metrics).
            enable: force all switches regardless of paths.
            profile: span-name prefix for cProfile dumps (defaults to
                ``$REPRO_PROFILE``).
            events: fleet event stream destination (enables domain
                event emission; defaults to ``$REPRO_EVENTS``).
        """
        trace = trace if trace is not None else envvars.get(ENV_TRACE)
        metrics = (
            metrics if metrics is not None else envvars.get(ENV_METRICS)
        )
        profile = (
            profile if profile is not None else envvars.get(ENV_PROFILE)
        )
        events = events if events is not None else envvars.get(ENV_EVENTS)
        if trace:
            self.trace_path = trace
            self.tracer.enabled = True
        if metrics:
            self.metrics_path = metrics
            self.registry.enabled = True
        if events:
            self.events_path = events
            self.fleet_events.enabled = True
        if profile:
            self.tracer.profile_prefix = profile
        if enable is not None:
            self.tracer.enabled = enable
            self.registry.enabled = enable
            self.fleet_events.enabled = enable
        return self

    def segment_dir(self) -> str:
        """The directory worker trace segments land in (created lazily).

        Lives next to the configured trace file (``<trace>.segs``) so
        segments survive a crashed parent for post-mortems; falls back
        to a fresh temp directory when no trace path is set.
        """
        if self._segment_dir is None:
            if self.trace_path:
                self._segment_dir = os.path.abspath(self.trace_path) + ".segs"
            else:
                self._segment_dir = tempfile.mkdtemp(prefix="repro-trace-segs-")
        os.makedirs(self._segment_dir, exist_ok=True)
        return self._segment_dir

    def register_metrics(self, registry: MetricsRegistry) -> None:
        """Fold ``registry`` into future :meth:`export` calls."""
        if not any(existing is registry for existing in self._extra):
            self._extra.append(registry)

    def merged_registry(self) -> MetricsRegistry:
        """The observer registry plus every registered one, merged."""
        return merged([self.registry] + list(self._extra))

    def export(
        self,
        trace_path: Optional[str] = None,
        metrics_path: Optional[str] = None,
        events_path: Optional[str] = None,
    ) -> Dict[str, str]:
        """Write the configured artifacts; returns ``{kind: path}``."""
        written: Dict[str, str] = {}
        trace_path = trace_path or self.trace_path
        metrics_path = metrics_path or self.metrics_path
        events_path = events_path or self.events_path
        if trace_path and self.tracer.enabled:
            if self._segment_dir is not None:
                self.tracer.absorb_segments(self._segment_dir)
                try:
                    os.rmdir(self._segment_dir)
                except OSError:
                    pass  # foreign leftovers keep the dir alive; harmless
            self.tracer.flush(trace_path)
            written["trace"] = trace_path
        if events_path and self.fleet_events.enabled:
            self.fleet_events.flush(events_path)
            written["events"] = events_path
        if metrics_path:
            registry = self.merged_registry()
            if self.fleet_events.enabled and self.fleet_events.count():
                # Fold the fleet-health gauges (rolling AFR, burst
                # inflation, top shelf models) into the same textfile.
                from repro.obs.health import FleetHealth

                health = FleetHealth().ingest_all(self.fleet_events.events())
                health.publish(registry)
            write_metrics(metrics_path, registry)
            written["metrics"] = metrics_path
        return written

    def reset(self) -> None:
        """Back to the disabled, empty boot state (tests)."""
        self.tracer = Tracer(enabled=False)
        self.registry = MetricsRegistry(enabled=False)
        self.fleet_events = FleetEventLog(enabled=False)
        self.trace_path = None
        self.metrics_path = None
        self.events_path = None
        self._segment_dir = None
        self._extra = []


#: The process-wide observer instance the helpers below act on.
OBSERVER = Observer()


def configure(
    trace: Optional[str] = None,
    metrics: Optional[str] = None,
    enable: Optional[bool] = None,
    profile: Optional[str] = None,
    events: Optional[str] = None,
) -> Observer:
    """Configure the process-wide observer (see :meth:`Observer.configure`)."""
    return OBSERVER.configure(
        trace=trace, metrics=metrics, enable=enable, profile=profile,
        events=events,
    )


def enabled() -> bool:
    """Whether the process-wide observer records anything at all."""
    return OBSERVER.enabled


def span(name: str, /, **attrs: object):
    """A timing span over the process tracer; no-op when disabled."""
    tracer = OBSERVER.tracer
    if not tracer.enabled:
        return NULL_SPAN
    return tracer.span(name, attrs)


def traced(name: str, /, **attrs: object):
    """Decorator form of :func:`span` (checked at call time)."""

    def decorate(fn):
        def wrapper(*args: object, **kwargs: object):
            tracer = OBSERVER.tracer
            if not tracer.enabled:
                return fn(*args, **kwargs)
            with tracer.span(name, dict(attrs)):
                return fn(*args, **kwargs)

        wrapper.__name__ = getattr(fn, "__name__", "wrapper")
        wrapper.__doc__ = fn.__doc__
        wrapper.__wrapped__ = fn
        return wrapper

    return decorate


def inc(name: str, n: int = 1, /, **labels: object) -> None:
    """Increment a counter on the process registry (no-op when disabled)."""
    OBSERVER.registry.increment(name, n, **labels)


def observe(name: str, seconds: float, /, **labels: object) -> None:
    """Record a latency on the process registry (no-op when disabled)."""
    OBSERVER.registry.observe(name, seconds, **labels)


def set_gauge(name: str, value: float, /, **labels: object) -> None:
    """Set a gauge on the process registry (no-op when disabled)."""
    OBSERVER.registry.set_gauge(name, value, **labels)


def register_metrics(registry: MetricsRegistry) -> None:
    """Include another registry in exports (see :meth:`Observer.register_metrics`)."""
    OBSERVER.register_metrics(registry)


def export(
    trace_path: Optional[str] = None,
    metrics_path: Optional[str] = None,
    events_path: Optional[str] = None,
) -> Dict[str, str]:
    """Write the configured trace/metrics artifacts (see :meth:`Observer.export`)."""
    return OBSERVER.export(
        trace_path=trace_path, metrics_path=metrics_path, events_path=events_path
    )


def events() -> List[Dict[str, object]]:
    """Snapshot of the buffered span events."""
    return OBSERVER.tracer.events()


def worker_trace_context() -> Optional[TraceContext]:
    """The :class:`TraceContext` to ship into pool workers.

    ``None`` — meaning workers stay untraced — when tracing is off or
    ``$REPRO_TRACE_WORKERS`` is explicitly disabled.
    """
    tracer = OBSERVER.tracer
    if not tracer.enabled:
        return None
    if not envvars.get_flag(ENV_TRACE_WORKERS, default=True):
        return None
    return tracer.context(OBSERVER.segment_dir())


def enter_worker_trace(context: TraceContext) -> None:
    """Adopt ``context`` on this process's tracer (worker side).

    Idempotent per (process, trace): a worker that already adopted this
    trace keeps accumulating spans across tasks instead of wiping its
    buffer on every payload.
    """
    tracer = OBSERVER.tracer
    adopted = tracer.adopted
    if (
        adopted is not None
        and adopted.trace_id == context.trace_id
        and tracer.pid == os.getpid()
    ):
        return
    tracer.adopt(context)


def flush_worker_segment() -> int:
    """Write this worker's segment file; returns spans written."""
    return OBSERVER.tracer.flush_segment()


def emit(kind: str, t: float, /, **fields: object) -> None:
    """Emit one fleet event on the process log (no-op when disabled)."""
    OBSERVER.fleet_events.emit(kind, t, **fields)


def fleet_events() -> List[Dict[str, object]]:
    """Snapshot of the buffered fleet events."""
    return OBSERVER.fleet_events.events()


def reset() -> None:
    """Reset the process-wide observer to its disabled boot state."""
    OBSERVER.reset()


__all__ = [
    "DEFAULT_BOUNDS",
    "DEFAULT_MAX_LABEL_SETS",
    "ENV_EVENTS",
    "ENV_METRICS",
    "ENV_PROFILE",
    "ENV_TRACE",
    "ENV_TRACE_WORKERS",
    "EVENTS_SCHEMA_VERSION",
    "FleetEventLog",
    "Histogram",
    "LABELS_DROPPED",
    "MetricsRegistry",
    "NULL_SPAN",
    "NullSpan",
    "OBSERVER",
    "OVERFLOW_LABEL",
    "Observer",
    "Span",
    "TraceContext",
    "Tracer",
    "configure",
    "emit",
    "enabled",
    "enter_worker_trace",
    "events",
    "export",
    "flush_worker_segment",
    "fleet_events",
    "inc",
    "load_metrics",
    "load_trace_summary",
    "merged",
    "observe",
    "parse_prometheus",
    "parse_series_key",
    "percentile",
    "read_events",
    "read_events_meta",
    "read_trace",
    "read_traces",
    "register_metrics",
    "render_prometheus",
    "render_trace_summary",
    "reset",
    "series_key",
    "set_gauge",
    "span",
    "summarize_trace",
    "traced",
    "worker_trace_context",
    "write_metrics",
]
