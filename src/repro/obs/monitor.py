"""Live run monitor: ``repro obs watch`` (TTY) and ``obs serve`` (HTTP).

Both read the same substrate — the ``heartbeat-<pid>.json`` records a
monitored run publishes into ``$REPRO_STATUS_DIR`` (see
:mod:`repro.obs.sampler`) — so they work *during* a sharded run, from
a different process than the one doing the work:

* :func:`watch` re-renders an aligned per-worker status table every
  interval (or emits the raw ``/status`` JSON with ``--json``) and
  exits on its own once every heartbeat reports ``done``.
* :func:`make_server` builds a stdlib :class:`ThreadingHTTPServer`
  answering ``/status`` (the :func:`read_status` payload as JSON) and
  ``/metrics`` (the run's exported Prometheus textfile) — the first
  brick of the ROADMAP "live fleet service" health API.
"""

from __future__ import annotations

import json
import sys
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, List, Optional, TextIO

from repro.obs.sampler import read_status

#: Default port for ``repro obs serve`` (overridden by $REPRO_MONITOR_PORT).
DEFAULT_PORT = 8765

ENV_MONITOR_PORT = "REPRO_MONITOR_PORT"


def _fmt_bytes(value: object) -> str:
    try:
        n = float(value)  # type: ignore[arg-type]
    except (TypeError, ValueError):
        return "-"
    for unit in ("B", "KiB", "MiB", "GiB"):
        if n < 1024.0 or unit == "GiB":
            return "%.0f%s" % (n, unit) if unit == "B" else "%.1f%s" % (n, unit)
        n /= 1024.0
    return "-"


def _fmt_age(seconds: float) -> str:
    if seconds < 0:
        seconds = 0.0
    if seconds < 100:
        return "%.1fs" % seconds
    return "%dm%02ds" % (int(seconds) // 60, int(seconds) % 60)


def render_status(status: Dict[str, object], now: Optional[float] = None) -> str:
    """The ``obs watch`` text block: one aligned row per process."""
    now = time.time() if now is None else now
    workers = status.get("workers")
    workers = workers if isinstance(workers, list) else []
    lines = ["run status: %s" % status.get("directory", "?")]
    if not workers:
        lines.append("  (no heartbeats yet)")
        return "\n".join(lines)
    counter_names = sorted(
        {
            key
            for record in workers
            if isinstance(record.get("progress"), dict)
            for key in record["progress"]
        }
    )
    header = ["pid", "shard", "state", "age", "rss"] + counter_names
    rows: List[List[str]] = [header]
    for record in workers:
        shard = record.get("shard")
        if not isinstance(shard, int):
            shard = record.get("role", "-")
        progress = record.get("progress")
        progress = progress if isinstance(progress, dict) else {}
        rows.append(
            [
                str(record.get("pid", "?")),
                str(shard),
                str(record.get("state", "?")),
                _fmt_age(now - float(record.get("t", now))),
                _fmt_bytes(record.get("rss_bytes")),
            ]
            + [str(progress.get(name, 0)) for name in counter_names]
        )
    totals = status.get("progress")
    totals = totals if isinstance(totals, dict) else {}
    rows.append(
        ["total", "", "%d running" % status.get("running", 0), "", ""]
        + [str(totals.get(name, 0)) for name in counter_names]
    )
    widths = [max(len(row[i]) for row in rows) for i in range(len(header))]
    for row in rows:
        lines.append(
            "  " + "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)).rstrip()
        )
    return "\n".join(lines)


def watch(
    directory: str,
    interval: float = 1.0,
    once: bool = False,
    as_json: bool = False,
    stream: Optional[TextIO] = None,
) -> int:
    """Poll ``directory`` and print status until the run finishes.

    With ``once`` prints a single snapshot (the CI artifact path);
    otherwise loops until every heartbeat reports ``done`` or the user
    interrupts.  Returns a process exit code.
    """
    stream = sys.stdout if stream is None else stream
    try:
        while True:
            status = read_status(directory)
            if as_json:
                print(json.dumps(status, sort_keys=True), file=stream)
            else:
                print(render_status(status), file=stream)
            stream.flush()
            if once:
                return 0
            workers = status.get("workers") or []
            if workers and not status.get("running"):
                return 0
            time.sleep(max(0.05, interval))
    except KeyboardInterrupt:
        return 0


class MonitorHandler(BaseHTTPRequestHandler):
    """``/status`` + ``/metrics`` over the run's heartbeat directory."""

    server_version = "repro-obs"

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        if path == "/status":
            payload = json.dumps(
                read_status(self.server.status_dir), sort_keys=True
            ).encode("utf-8")
            self._reply(200, "application/json", payload)
        elif path == "/metrics":
            metrics_path = getattr(self.server, "metrics_path", None)
            try:
                with open(metrics_path, "rb") as handle:  # type: ignore[arg-type]
                    payload = handle.read()
            except (OSError, TypeError):
                self._reply(404, "text/plain", b"no metrics textfile yet\n")
                return
            self._reply(200, "text/plain; version=0.0.4", payload)
        elif path == "/":
            payload = json.dumps(
                {"ok": True, "endpoints": ["/status", "/metrics"]}
            ).encode("utf-8")
            self._reply(200, "application/json", payload)
        else:
            self._reply(404, "text/plain", b"unknown path\n")

    def _reply(self, code: int, content_type: str, payload: bytes) -> None:
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def log_message(self, format: str, *args: object) -> None:  # noqa: A002
        return  # keep the CLI's stdout/stderr clean


class MonitorServer(ThreadingHTTPServer):
    """ThreadingHTTPServer carrying the monitor's two data sources."""

    daemon_threads = True

    def __init__(
        self,
        address: tuple,
        status_dir: str,
        metrics_path: Optional[str] = None,
    ) -> None:
        super().__init__(address, MonitorHandler)
        self.status_dir = status_dir
        self.metrics_path = metrics_path


def make_server(
    status_dir: str,
    port: int = DEFAULT_PORT,
    metrics_path: Optional[str] = None,
    host: str = "127.0.0.1",
) -> MonitorServer:
    """Bind the monitor server (``port=0`` picks a free port)."""
    return MonitorServer((host, port), status_dir, metrics_path=metrics_path)


__all__ = [
    "DEFAULT_PORT",
    "ENV_MONITOR_PORT",
    "MonitorHandler",
    "MonitorServer",
    "make_server",
    "render_status",
    "watch",
]
