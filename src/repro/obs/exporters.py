"""Exporters: JSONL traces in, Prometheus textfiles and tables out.

Three output formats, one per consumer:

- **JSONL trace** — one ``meta`` line then one JSON object per span
  (written by :meth:`repro.obs.trace.Tracer.flush`); read back with
  :func:`read_trace` for tooling and the ``repro obs summary`` command.
- **Prometheus textfile** — :func:`render_prometheus` /
  :func:`write_metrics` turn a :class:`MetricsRegistry` into the
  node-exporter textfile-collector format (``# TYPE`` comments,
  ``_bucket{le=...}`` / ``_sum`` / ``_count`` histogram series).
  Dotted metric names are sanitized (``cache.hit`` ->
  ``repro_cache_hit``) because Prometheus names cannot contain dots.
- **Summary table** — :func:`render_trace_summary` aggregates a trace
  per span name into count / total / mean / p50 / p95 / max, computed
  *exactly* from the recorded durations (unlike the registry's bucketed
  histograms).
"""

from __future__ import annotations

import json
import math
import os
import tempfile
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.obs.registry import Histogram, MetricsRegistry, parse_series_key


# -- JSONL traces ------------------------------------------------------------


def read_trace(
    path: str,
    *,
    strict: bool = True,
    warn: Optional[Callable[[str], None]] = None,
) -> List[Dict[str, object]]:
    """Parse a JSONL trace file into its span events.

    ``meta`` records, blank lines, and records of unknown type are
    skipped, so the reader tolerates both bare event streams and the
    full flushed format.

    Args:
        path: JSONL trace written by ``Tracer.flush`` (or ``--trace``).
        strict: raise on malformed lines (the default, for library
            callers); ``False`` skips them — the behavior ``repro obs
            summary`` wants for truncated traces from crashed runs.
        warn: callback receiving one message per skipped line when
            ``strict`` is off.

    Raises:
        ValueError: when a non-empty line is not valid JSON (strict
            mode only).
    """
    events: List[Dict[str, object]] = []
    with open(path) as handle:
        for number, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                message = "%s:%d: not valid JSON: %s" % (path, number, exc)
                if strict:
                    raise ValueError(message) from exc
                if warn is not None:
                    warn(
                        "%s:%d: skipping malformed trace line (%s)"
                        % (path, number, exc)
                    )
                continue
            if isinstance(record, dict) and record.get("type", "span") == "span":
                events.append(record)
    return events


def read_traces(
    paths: Sequence[str],
    *,
    strict: bool = True,
    warn: Optional[Callable[[str], None]] = None,
) -> List[Dict[str, object]]:
    """Concatenate the span events of several trace files, in order.

    Used by ``repro obs summary A B C`` to compute percentiles over the
    merged population instead of per-file.
    """
    events: List[Dict[str, object]] = []
    for path in paths:
        events.extend(read_trace(path, strict=strict, warn=warn))
    return events


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of ``values`` (exact, 0.0 when empty)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(1, min(len(ordered), math.ceil(q * len(ordered))))
    return ordered[rank - 1]


def summarize_trace(
    events: Sequence[Mapping[str, object]],
) -> Dict[str, Dict[str, float]]:
    """Aggregate span events per name.

    Returns ``{name: {count, total, mean, p50, p95, max, errors}}``
    with exact (not bucketed) percentiles over the span durations.
    """
    durations: Dict[str, List[float]] = {}
    errors: Dict[str, int] = {}
    for event in events:
        name = str(event.get("name", "?"))
        durations.setdefault(name, []).append(float(event.get("duration", 0.0)))
        if "error" in event:
            errors[name] = errors.get(name, 0) + 1
    summary: Dict[str, Dict[str, float]] = {}
    for name, values in durations.items():
        total = sum(values)
        summary[name] = {
            "count": float(len(values)),
            "total": total,
            "mean": total / len(values),
            "p50": percentile(values, 0.50),
            "p95": percentile(values, 0.95),
            "max": max(values),
            "errors": float(errors.get(name, 0)),
        }
    return summary


def render_trace_summary(
    events: Sequence[Mapping[str, object]], title: str = "trace summary"
) -> str:
    """Render :func:`summarize_trace` as an aligned table, widest total
    first."""
    summary = summarize_trace(events)
    lines = [title]
    if not summary:
        lines.append("  (no spans recorded)")
        return "\n".join(lines)
    name_width = max(len(name) for name in summary)
    header = "  %-*s %7s %10s %10s %10s %10s %10s" % (
        name_width, "span", "count", "total", "mean", "p50", "p95", "max",
    )
    lines.append(header)
    for name in sorted(summary, key=lambda n: -summary[n]["total"]):
        stats = summary[name]
        suffix = (
            "  errors=%d" % int(stats["errors"]) if stats["errors"] else ""
        )
        lines.append(
            "  %-*s %7d %9.4gs %9.4gs %9.4gs %9.4gs %9.4gs%s"
            % (
                name_width,
                name,
                int(stats["count"]),
                stats["total"],
                stats["mean"],
                stats["p50"],
                stats["p95"],
                stats["max"],
                suffix,
            )
        )
    return "\n".join(lines)


# -- Prometheus textfiles -----------------------------------------------------


def _prom_name(name: str, namespace: str) -> str:
    """A legal Prometheus metric name from a dotted repro one."""
    cleaned = "".join(
        ch if (ch.isalnum() or ch == "_") else "_" for ch in name
    )
    if namespace:
        cleaned = "%s_%s" % (namespace, cleaned)
    if cleaned and cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return cleaned


def _prom_labels(labels: Mapping[str, str], extra: str = "") -> str:
    """Render a label dict as ``{k="v",...}`` (empty string when bare)."""
    parts = ['%s="%s"' % (k, str(v).replace('"', '\\"')) for k, v in sorted(labels.items())]
    if extra:
        parts.append(extra)
    return "{%s}" % ",".join(parts) if parts else ""


def render_prometheus(
    registry: MetricsRegistry, namespace: str = "repro"
) -> str:
    """The registry as a Prometheus textfile-collector payload."""
    snapshot = registry.snapshot()
    lines: List[str] = []
    seen_types: Dict[str, str] = {}

    def type_line(prom: str, kind: str) -> None:
        if seen_types.get(prom) != kind:
            seen_types[prom] = kind
            lines.append("# TYPE %s %s" % (prom, kind))

    for key in sorted(snapshot["counters"]):  # type: ignore[index]
        name, labels = parse_series_key(key)
        prom = _prom_name(name, namespace)
        type_line(prom, "counter")
        value = snapshot["counters"][key]  # type: ignore[index]
        lines.append("%s%s %d" % (prom, _prom_labels(labels), value))
    for key in sorted(snapshot["gauges"]):  # type: ignore[index]
        name, labels = parse_series_key(key)
        prom = _prom_name(name, namespace)
        type_line(prom, "gauge")
        value = snapshot["gauges"][key]  # type: ignore[index]
        lines.append("%s%s %g" % (prom, _prom_labels(labels), value))
    for key in sorted(snapshot["histograms"]):  # type: ignore[index]
        name, labels = parse_series_key(key)
        prom = _prom_name(name, namespace) + "_seconds"
        type_line(prom, "histogram")
        hist = Histogram(tuple(snapshot["histograms"][key]["bounds"]))  # type: ignore[index]
        hist.merge(snapshot["histograms"][key])  # type: ignore[index]
        cumulative = 0
        for bound, count in zip(hist.bounds, hist.counts):
            cumulative += count
            lines.append(
                "%s_bucket%s %d"
                % (prom, _prom_labels(labels, 'le="%g"' % bound), cumulative)
            )
        lines.append(
            "%s_bucket%s %d"
            % (prom, _prom_labels(labels, 'le="+Inf"'), hist.count)
        )
        lines.append("%s_sum%s %g" % (prom, _prom_labels(labels), hist.total))
        lines.append("%s_count%s %d" % (prom, _prom_labels(labels), hist.count))
    return "\n".join(lines) + ("\n" if lines else "")


def write_metrics(
    path: str, registry: MetricsRegistry, namespace: str = "repro"
) -> None:
    """Atomically write :func:`render_prometheus` output to ``path``."""
    payload = render_prometheus(registry, namespace=namespace)
    directory = os.path.dirname(os.path.abspath(path)) or "."
    os.makedirs(directory, exist_ok=True)
    fd, temp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(payload)
        os.replace(temp_path, path)
    except BaseException:
        try:
            os.remove(temp_path)
        except OSError:
            pass
        raise


def load_trace_summary(path: str, title: Optional[str] = None) -> str:
    """Read a JSONL trace and render its summary table."""
    events = read_trace(path)
    return render_trace_summary(
        events, title=title or ("trace summary: %s" % path)
    )


# -- Prometheus textfile parsing ---------------------------------------------


def _parse_sample_line(line: str) -> Optional[Tuple[str, Dict[str, str], float]]:
    """Split one sample line into ``(name, labels, value)``."""
    try:
        if "{" in line:
            name, _, rest = line.partition("{")
            inner, _, value_part = rest.rpartition("}")
            labels: Dict[str, str] = {}
            for part in inner.split(","):
                if not part:
                    continue
                key, _, raw = part.partition("=")
                labels[key.strip()] = raw.strip().strip('"').replace('\\"', '"')
            return name.strip(), labels, float(value_part.strip())
        name, _, value_part = line.rpartition(" ")
        return name.strip(), {}, float(value_part.strip())
    except ValueError:
        return None


def parse_prometheus(text: str) -> Dict[str, Dict[str, object]]:
    """Parse a textfile-collector payload back into series.

    The inverse of :func:`render_prometheus`, as far as the format
    allows: histogram ``_bucket`` / ``_sum`` / ``_count`` series are
    regrouped under their base metric.  Returns::

        {"counters": {key: float},
         "gauges": {key: float},
         "histograms": {key: {"buckets": [(le, cumulative), ...],
                              "sum": float, "count": float}}}

    where ``key`` is the flattened ``name{k=v,...}`` form (without the
    ``le`` label for buckets).  Used by the exporter round-trip tests,
    the run report, and ``repro obs summary --metrics``.
    """
    types: Dict[str, str] = {}
    counters: Dict[str, float] = {}
    gauges: Dict[str, float] = {}
    histograms: Dict[str, Dict[str, object]] = {}

    def histogram_for(name: str, labels: Mapping[str, str]) -> Dict[str, object]:
        key = name if not labels else (
            "%s{%s}" % (name, ",".join("%s=%s" % (k, labels[k]) for k in sorted(labels)))
        )
        return histograms.setdefault(key, {"buckets": [], "sum": 0.0, "count": 0.0})

    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) >= 4 and parts[1] == "TYPE":
                types[parts[2]] = parts[3]
            continue
        parsed = _parse_sample_line(line)
        if parsed is None:
            continue
        name, labels, value = parsed
        base = None
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and types.get(name[: -len(suffix)]) == "histogram":
                base = name[: -len(suffix)]
                if suffix == "_bucket":
                    le = labels.pop("le", "+Inf")
                    bound = float("inf") if le == "+Inf" else float(le)
                    hist = histogram_for(base, labels)
                    hist["buckets"].append((bound, value))  # type: ignore[union-attr]
                elif suffix == "_sum":
                    histogram_for(base, labels)["sum"] = value
                else:
                    histogram_for(base, labels)["count"] = value
                break
        if base is not None:
            continue
        key = name if not labels else (
            "%s{%s}" % (name, ",".join("%s=%s" % (k, labels[k]) for k in sorted(labels)))
        )
        if types.get(name) == "gauge":
            gauges[key] = value
        else:
            counters[key] = value
    return {"counters": counters, "gauges": gauges, "histograms": histograms}


def load_metrics(path: str) -> Dict[str, Dict[str, object]]:
    """Read and parse a Prometheus textfile (see :func:`parse_prometheus`)."""
    with open(path) as handle:
        return parse_prometheus(handle.read())


__all__ = [
    "load_metrics",
    "load_trace_summary",
    "parse_prometheus",
    "percentile",
    "read_trace",
    "read_traces",
    "render_prometheus",
    "render_trace_summary",
    "summarize_trace",
    "write_metrics",
]
