"""Fleet event stream: versioned, structured JSONL domain telemetry.

Where :mod:`repro.obs.trace` records what the *process* did (spans,
latencies), this module records what the simulated *fleet* did: every
delivered failure, every disk replacement, every RAID rebuild window —
stamped with simulation time and the full topological coordinates the
paper's analyses group by (system class, shelf model, RAID group).
Large-scale failure studies treat exactly this stream as the primary
artifact; downstream, :mod:`repro.obs.health` folds it into rolling
fleet-health series and ``repro obs report`` renders it.

The stream is JSONL with a schema-versioned ``meta`` first line::

    {"type": "meta", "stream": "fleet-events", "schema": 1, ...}
    {"type": "fleet", "kind": "fleet", "t": 0.0, "systems": 390, ...}
    {"type": "fleet", "kind": "failure", "t": 123456.7,
     "failure_type": "disk", "system_class": "low_end", ...}

Event kinds (``schema`` 1):

- ``fleet`` — one topology summary per simulation run (system / shelf /
  RAID group / disk counts, observation window, seed); the denominator
  record health aggregation needs for AFR computation.
- ``failure`` — one delivered subsystem failure (``t`` is the
  detection time, as the paper's analyses require).
- ``repair`` — a failed disk's replacement entering service.
- ``rebuild`` — the RAID reconstruction window a disk failure opened.

Like the tracer, the log buffers in memory and :meth:`FleetEventLog.flush`
publishes atomically (temp file + ``os.replace``).  Emission is enabled
via ``--events FILE`` / ``$REPRO_EVENTS``; a disabled log costs one
attribute check per site.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
import time
from typing import Callable, Dict, Iterable, List, Optional

#: Version stamped into the stream's meta line; readers reject streams
#: with a *newer* major version than they understand.
EVENTS_SCHEMA_VERSION = 1

#: The ``stream`` discriminator in the meta line (trace files carry no
#: such field, so mixing up the two artifacts fails loudly).
STREAM_NAME = "fleet-events"

#: Event kinds a schema-1 stream may contain.
EVENT_KINDS = ("fleet", "failure", "repair", "rebuild")


class FleetEventLog:
    """Buffered, atomically-flushed fleet event collector.

    Args:
        enabled: collect events; ``False`` (the default) makes
            :meth:`emit` a no-op after one attribute check.
    """

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = enabled
        self.epoch_wall = time.time()
        self._lock = threading.Lock()
        self._events: List[Dict[str, object]] = []

    # -- recording -----------------------------------------------------------

    def emit(self, kind: str, t: float, /, **fields: object) -> None:
        """Append one fleet event (no-op while disabled).

        Args:
            kind: one of :data:`EVENT_KINDS`.
            t: simulation time in seconds since the study window start.
            fields: structured payload; values are coerced to
                JSON-serializable scalars.
        """
        if not self.enabled:
            return
        event: Dict[str, object] = {"type": "fleet", "kind": kind, "t": float(t)}
        for key, value in fields.items():
            event[key] = _jsonable(value)
        with self._lock:
            self._events.append(event)

    def emit_many(self, records: Iterable[Dict[str, object]]) -> None:
        """Append pre-built event dicts in one lock acquisition."""
        if not self.enabled:
            return
        with self._lock:
            self._events.extend(records)

    # -- buffer management ---------------------------------------------------

    def events(self) -> List[Dict[str, object]]:
        """A snapshot copy of the buffered events."""
        with self._lock:
            return list(self._events)

    def count(self) -> int:
        """Number of buffered events."""
        with self._lock:
            return len(self._events)

    def clear(self) -> None:
        """Drop all buffered events."""
        with self._lock:
            self._events = []

    def meta(self) -> Dict[str, object]:
        """The schema-versioned header record (first JSONL line)."""
        return {
            "type": "meta",
            "stream": STREAM_NAME,
            "schema": EVENTS_SCHEMA_VERSION,
            "epoch_wall": self.epoch_wall,
            "pid": os.getpid(),
            "events": len(self._events),
        }

    def flush(self, path: str) -> int:
        """Write the full buffer to ``path`` as JSONL, atomically.

        Returns the number of fleet events written.  Same contract as
        :meth:`repro.obs.trace.Tracer.flush`: temp file + ``os.replace``,
        so a concurrent reader never sees a torn stream.
        """
        events = self.events()
        directory = os.path.dirname(os.path.abspath(path)) or "."
        os.makedirs(directory, exist_ok=True)
        fd, temp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(json.dumps(self.meta()) + "\n")
                for event in events:
                    handle.write(json.dumps(event) + "\n")
            os.replace(temp_path, path)
        except BaseException:
            try:
                os.remove(temp_path)
            except OSError:
                pass
            raise
        return len(events)


def read_events(
    path: str,
    *,
    strict: bool = True,
    warn: Optional[Callable[[str], None]] = None,
) -> List[Dict[str, object]]:
    """Parse a fleet event stream back into its event dicts.

    The first non-empty line must be the stream's ``meta`` record; its
    ``schema`` is checked against :data:`EVENTS_SCHEMA_VERSION` so a
    reader never silently misinterprets a future format.

    Args:
        path: JSONL stream written by :meth:`FleetEventLog.flush`.
        strict: raise :class:`ValueError` on malformed lines; when
            ``False``, skip them (reporting through ``warn``).
        warn: callback receiving one message per skipped line.

    Raises:
        ValueError: missing/foreign meta line, unsupported schema
            version, or (in strict mode) a malformed line.
    """
    events: List[Dict[str, object]] = []
    meta: Optional[Dict[str, object]] = None
    with open(path) as handle:
        for number, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                message = "%s:%d: skipping malformed line: %s" % (path, number, exc)
                if strict:
                    raise ValueError(message) from exc
                if warn is not None:
                    warn(message)
                continue
            if not isinstance(record, dict):
                continue
            if meta is None:
                if record.get("type") != "meta" or record.get("stream") != STREAM_NAME:
                    raise ValueError(
                        "%s: not a fleet event stream (first record must be "
                        "its meta line)" % path
                    )
                schema = int(record.get("schema", 0))
                if schema > EVENTS_SCHEMA_VERSION:
                    raise ValueError(
                        "%s: stream schema %d is newer than supported %d"
                        % (path, schema, EVENTS_SCHEMA_VERSION)
                    )
                meta = record
                continue
            if record.get("type") == "fleet":
                events.append(record)
    if meta is None:
        raise ValueError("%s: empty file is not a fleet event stream" % path)
    return events


def read_events_meta(path: str) -> Dict[str, object]:
    """The stream's meta record alone (cheap: reads one line)."""
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            if (
                isinstance(record, dict)
                and record.get("type") == "meta"
                and record.get("stream") == STREAM_NAME
            ):
                return record
            break
    raise ValueError("%s: no fleet event stream meta line" % path)


def _jsonable(value: object) -> object:
    """Coerce a field value to something json.dumps accepts."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


__all__ = [
    "EVENTS_SCHEMA_VERSION",
    "EVENT_KINDS",
    "FleetEventLog",
    "STREAM_NAME",
    "read_events",
    "read_events_meta",
]
