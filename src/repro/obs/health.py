"""Streaming fleet-health aggregation over the fleet event stream.

:class:`FleetHealth` folds :mod:`repro.obs.events` records — one at a
time, so it works on live buffers and on replayed JSONL streams alike —
into the windowed series an operator of the simulated fleet would watch:

- **rolling AFR per failure type** — failures per window normalized by
  the fleet's disk population and the window length (annualized, in
  percent, matching the paper's Fig. 4 units);
- **burst / self-correlation check** — the paper's §5.2 independence
  test: across per-shelf (or per-RAID-group) observation windows, the
  empirical probability of seeing exactly two failures must satisfy
  ``P(2) = P(1)^2 / 2`` if failures were independent; bursty processes
  exceed it many-fold (Fig. 10, Finding 11);
- **top-k failing shelf models** — where the failures concentrate.

:meth:`FleetHealth.publish` feeds the current aggregates into a
:class:`~repro.obs.registry.MetricsRegistry` as gauges
(``health.afr_pct{failure_type=...}``, ``health.burst_inflation{scope=...}``,
``health.shelf_failures{shelf_model=...}``), which is how the exported
Prometheus textfile of an ``--events`` run carries fleet health next to
process metrics.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.obs.registry import MetricsRegistry
from repro.units import SECONDS_PER_YEAR

#: Default rolling-AFR window: 30 days of simulation time.
DEFAULT_AFR_WINDOW_SECONDS = 30.0 * 86_400.0

#: Default self-correlation window: the paper's 1 year (§5.2.2).
DEFAULT_CORRELATION_WINDOW_SECONDS = SECONDS_PER_YEAR

#: Scopes the burst check aggregates over.
BURST_SCOPES = ("shelf", "raid_group")


@dataclasses.dataclass(frozen=True)
class BurstCheck:
    """One scope's P(2)-vs-P(1)^2/2 independence check.

    Attributes:
        scope: ``"shelf"`` or ``"raid_group"``.
        window_seconds: the observation window length T.
        n_cells: scope-unit observation windows counted.
        count_exactly_one / count_exactly_two: cells with exactly 1 / 2
            failures.
        p1 / p2_empirical: the corresponding fractions.
        p2_theoretical: ``p1^2 / 2`` (equation 3 under independence).
    """

    scope: str
    window_seconds: float
    n_cells: int
    count_exactly_one: int
    count_exactly_two: int
    p1: float
    p2_empirical: float
    p2_theoretical: float

    @property
    def inflation(self) -> float:
        """Empirical / theoretical P(2); > 1 signals clustered failures."""
        if self.p2_theoretical == 0.0:
            return float("inf") if self.p2_empirical > 0.0 else 1.0
        return self.p2_empirical / self.p2_theoretical

    @property
    def bursty(self) -> bool:
        """Whether the stream shows super-independent double failures."""
        return self.p2_empirical > self.p2_theoretical


@dataclasses.dataclass(frozen=True)
class FleetInfo:
    """The topology summary from the stream's ``fleet`` event."""

    systems: int
    shelves: int
    raid_groups: int
    disks: int
    duration_seconds: float
    seed: Optional[int] = None


class FleetHealth:
    """Streaming aggregator over fleet events (see module docstring).

    Args:
        afr_window_seconds: rolling-AFR window length.
        correlation_window_seconds: burst-check window length T.
        top_k: how many shelf models :meth:`publish` exports.
    """

    def __init__(
        self,
        afr_window_seconds: float = DEFAULT_AFR_WINDOW_SECONDS,
        correlation_window_seconds: float = DEFAULT_CORRELATION_WINDOW_SECONDS,
        top_k: int = 5,
    ) -> None:
        if afr_window_seconds <= 0.0 or correlation_window_seconds <= 0.0:
            raise ValueError("aggregation windows must be positive")
        self.afr_window_seconds = float(afr_window_seconds)
        self.correlation_window_seconds = float(correlation_window_seconds)
        self.top_k = top_k
        self.fleet: Optional[FleetInfo] = None
        self.kind_counts: Dict[str, int] = {}
        self.type_counts: Dict[str, int] = {}
        self.last_t = 0.0
        # (window index, failure type) -> failures in that AFR window.
        self._afr_counts: Dict[Tuple[int, str], int] = {}
        # scope -> (unit id, correlation-window index) -> failure count.
        self._unit_counts: Dict[str, Dict[Tuple[str, int], int]] = {
            scope: {} for scope in BURST_SCOPES
        }
        self._shelf_model_counts: Dict[str, int] = {}

    # -- ingestion -----------------------------------------------------------

    def ingest(self, event: Mapping[str, object]) -> None:
        """Fold one fleet event into the aggregates."""
        kind = str(event.get("kind", "?"))
        self.kind_counts[kind] = self.kind_counts.get(kind, 0) + 1
        t = float(event.get("t", 0.0))
        self.last_t = max(self.last_t, t)
        if kind == "fleet":
            self.fleet = FleetInfo(
                systems=int(event.get("systems", 0)),
                shelves=int(event.get("shelves", 0)),
                raid_groups=int(event.get("raid_groups", 0)),
                disks=int(event.get("disks", 0)),
                duration_seconds=float(event.get("duration_seconds", 0.0)),
                seed=event.get("seed"),  # type: ignore[arg-type]
            )
            return
        if kind != "failure":
            return
        failure_type = str(event.get("failure_type", "?"))
        self.type_counts[failure_type] = self.type_counts.get(failure_type, 0) + 1
        window = int(t // self.afr_window_seconds)
        self._afr_counts[(window, failure_type)] = (
            self._afr_counts.get((window, failure_type), 0) + 1
        )
        cell = int(t // self.correlation_window_seconds)
        for scope, field in (("shelf", "shelf_id"), ("raid_group", "raid_group_id")):
            unit = event.get(field)
            if unit is None:
                continue
            counts = self._unit_counts[scope]
            key = (str(unit), cell)
            counts[key] = counts.get(key, 0) + 1
        shelf_model = event.get("shelf_model")
        if shelf_model is not None:
            key = str(shelf_model)
            self._shelf_model_counts[key] = self._shelf_model_counts.get(key, 0) + 1

    def ingest_all(self, events: Iterable[Mapping[str, object]]) -> "FleetHealth":
        """Fold a whole stream; returns self for chaining."""
        for event in events:
            self.ingest(event)
        return self

    # -- series --------------------------------------------------------------

    @property
    def failures(self) -> int:
        """Total failure events ingested."""
        return self.kind_counts.get("failure", 0)

    def afr_by_type(self) -> Dict[str, float]:
        """Whole-stream annualized failure rate (percent) per type.

        Uses the ``fleet`` event's disk count and observation window as
        the denominator; without one the rates are undefined and the
        result is empty.
        """
        if self.fleet is None or self.fleet.disks <= 0:
            return {}
        years = self.fleet.duration_seconds / SECONDS_PER_YEAR
        if years <= 0.0:
            return {}
        return {
            failure_type: 100.0 * count / self.fleet.disks / years
            for failure_type, count in sorted(self.type_counts.items())
        }

    def afr_series(
        self, failure_type: Optional[str] = None
    ) -> List[Tuple[float, float]]:
        """Rolling AFR: ``(window start seconds, annualized percent)``.

        Windows with zero failures between the first and last active
        window are reported explicitly (a healthy stretch is a data
        point, not a gap).  Empty without a ``fleet`` event.
        """
        if self.fleet is None or self.fleet.disks <= 0:
            return []
        windows = [w for (w, ft) in self._afr_counts if failure_type in (None, ft)]
        if not windows:
            return []
        window_years = self.afr_window_seconds / SECONDS_PER_YEAR
        series: List[Tuple[float, float]] = []
        for window in range(min(windows), max(windows) + 1):
            count = sum(
                n
                for (w, ft), n in self._afr_counts.items()
                if w == window and failure_type in (None, ft)
            )
            afr = 100.0 * count / self.fleet.disks / window_years
            series.append((window * self.afr_window_seconds, afr))
        return series

    def burst_check(self, scope: str = "shelf") -> BurstCheck:
        """The P(2)-vs-P(1)^2/2 check over one scope's windows.

        Every (unit, window) cell with at least one ingested failure
        plus the fleet's silent units (from the ``fleet`` event's
        counts, when available) form the cell population; the paper's
        equation 3 then gives the independence prediction for P(2).
        """
        if scope not in BURST_SCOPES:
            raise ValueError(
                "scope must be one of %s, not %r" % (", ".join(BURST_SCOPES), scope)
            )
        counts = self._unit_counts[scope]
        exactly = {1: 0, 2: 0}
        for value in counts.values():
            if value in exactly:
                exactly[value] += 1
        active_units = {unit for (unit, _cell) in counts}
        n_windows = max(
            1, int(math.ceil(max(self.last_t, 1.0) / self.correlation_window_seconds))
        )
        population = len(active_units)
        if self.fleet is not None:
            fleet_units = (
                self.fleet.shelves if scope == "shelf" else self.fleet.raid_groups
            )
            population = max(population, fleet_units)
        n_cells = population * n_windows
        p1 = exactly[1] / n_cells if n_cells else 0.0
        p2 = exactly[2] / n_cells if n_cells else 0.0
        return BurstCheck(
            scope=scope,
            window_seconds=self.correlation_window_seconds,
            n_cells=n_cells,
            count_exactly_one=exactly[1],
            count_exactly_two=exactly[2],
            p1=p1,
            p2_empirical=p2,
            p2_theoretical=p1 * p1 / 2.0,
        )

    def top_shelf_models(self, k: Optional[int] = None) -> List[Tuple[str, int]]:
        """Shelf models by failure count, worst first."""
        ranked = sorted(
            self._shelf_model_counts.items(), key=lambda item: (-item[1], item[0])
        )
        return ranked[: (self.top_k if k is None else k)]

    # -- export --------------------------------------------------------------

    def publish(self, registry: MetricsRegistry) -> None:
        """Set the current aggregates as gauges on ``registry``."""
        registry.set_gauge("health.events", float(sum(self.kind_counts.values())))
        registry.set_gauge("health.failures", float(self.failures))
        for failure_type, afr in self.afr_by_type().items():
            registry.set_gauge("health.afr_pct", afr, failure_type=failure_type)
        for scope in BURST_SCOPES:
            check = self.burst_check(scope)
            if check.n_cells == 0:
                continue
            inflation = check.inflation
            if math.isfinite(inflation):
                registry.set_gauge("health.burst_inflation", inflation, scope=scope)
            registry.set_gauge("health.burst_p1", check.p1, scope=scope)
            registry.set_gauge("health.burst_p2", check.p2_empirical, scope=scope)
        for shelf_model, count in self.top_shelf_models():
            registry.set_gauge(
                "health.shelf_failures", float(count), shelf_model=shelf_model
            )


def health_from_events(
    events: "Iterable[Mapping[str, object]] | str", **kwargs: float
) -> FleetHealth:
    """A :class:`FleetHealth` folded over ``events`` in one call.

    ``events`` may be an in-memory iterable of event records or the
    path of a flushed event-stream file.
    """
    if isinstance(events, str):
        from repro.obs.events import read_events

        events = read_events(events)
    return FleetHealth(**kwargs).ingest_all(events)  # type: ignore[arg-type]


__all__ = [
    "BURST_SCOPES",
    "BurstCheck",
    "DEFAULT_AFR_WINDOW_SECONDS",
    "DEFAULT_CORRELATION_WINDOW_SECONDS",
    "FleetHealth",
    "FleetInfo",
    "health_from_events",
]
