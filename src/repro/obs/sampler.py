"""Resource + progress timelines and the live-run heartbeat stream.

Three cooperating pieces, all off by default:

* :data:`PROGRESS` — a process-wide :class:`RunProgress` the engines
  publish counters into (``disks_advanced``, ``events_emitted``,
  ``shards_completed``, …).  Disabled, :meth:`RunProgress.advance` is a
  single attribute check, same contract as the rest of ``repro.obs``.
* :class:`ResourceSampler` — a daemon thread in the driver process
  that records an RSS/CPU/progress timeline (``/proc/self/statm``,
  ``os.times``) every ``$REPRO_SAMPLE_INTERVAL`` seconds and folds the
  result into :class:`~repro.obs.registry.MetricsRegistry` gauges
  (``sampler.rss_peak_bytes``, ``sampler.cpu_pct_mean``,
  ``progress.<counter>``) when stopped.
* Heartbeats — when ``$REPRO_STATUS_DIR`` names a directory, the
  driver (each sampler tick) and every pool worker (throttled from
  :meth:`RunProgress.advance`) atomically publish
  ``heartbeat-<pid>.json`` records there; :func:`read_status`
  aggregates them into the ``/status`` payload that ``repro obs
  watch`` and ``repro obs serve`` expose while a run is in flight.

Wall-clock and monotonic reads here are instrumentation, never
simulation input — this module sits inside the ``repro.obs`` prefix
that reprolint rule RPL002 allowlists (see docs/LINTING.md).
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Dict, List, Optional, Tuple

from repro import envvars

#: Default seconds between resource samples / throttled heartbeats.
DEFAULT_SAMPLE_INTERVAL = 0.5

#: Floor on the sampling interval — below this the sampler itself
#: becomes the workload.
MIN_SAMPLE_INTERVAL = 0.05

ENV_SAMPLE_INTERVAL = "REPRO_SAMPLE_INTERVAL"
ENV_STATUS_DIR = "REPRO_STATUS_DIR"

#: Heartbeat files match ``HEARTBEAT_PREFIX + <pid> + HEARTBEAT_SUFFIX``.
HEARTBEAT_PREFIX = "heartbeat-"
HEARTBEAT_SUFFIX = ".json"

try:
    _PAGE_SIZE = os.sysconf("SC_PAGE_SIZE")
except (AttributeError, OSError, ValueError):  # pragma: no cover - non-POSIX
    _PAGE_SIZE = 4096


def sample_interval() -> float:
    """The configured sampling interval, floored at 50 ms."""
    return max(
        MIN_SAMPLE_INTERVAL,
        envvars.get_float(ENV_SAMPLE_INTERVAL, DEFAULT_SAMPLE_INTERVAL),
    )


def status_directory() -> Optional[str]:
    """``$REPRO_STATUS_DIR`` as an absolute path (None = heartbeats off)."""
    value = envvars.get(ENV_STATUS_DIR)
    if not value:
        return None
    return os.path.abspath(os.path.expanduser(value))


# -- resource probes ---------------------------------------------------------


def read_rss_bytes() -> int:
    """This process's current resident set size (0 when unknowable).

    Reads ``/proc/self/statm`` (field 2 is resident pages); falls back
    to ``resource.getrusage`` — which reports *peak*, not current, RSS
    — on systems without procfs.
    """
    try:
        with open("/proc/self/statm") as handle:
            fields = handle.read().split()
        return int(fields[1]) * _PAGE_SIZE
    except (OSError, IndexError, ValueError):
        pass
    try:  # pragma: no cover - /proc exists on every CI platform
        import resource

        return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss) * 1024
    except (ImportError, OSError, ValueError):  # pragma: no cover
        return 0


def read_cpu_seconds() -> float:
    """Cumulative user+system CPU seconds of this process."""
    usage = os.times()
    return float(usage.user + usage.system)


# -- heartbeat records -------------------------------------------------------


def heartbeat_path(directory: str, pid: Optional[int] = None) -> str:
    """The heartbeat file for ``pid`` (this process by default)."""
    pid = os.getpid() if pid is None else pid
    return os.path.join(directory, "%s%d%s" % (HEARTBEAT_PREFIX, pid, HEARTBEAT_SUFFIX))


def write_heartbeat(directory: str, record: Dict[str, object]) -> str:
    """Atomically publish one process's heartbeat; returns the path.

    The temp name is derived from the pid (each process only ever
    writes its own heartbeat), deliberately avoiding :mod:`tempfile`
    so a fork can never catch this path holding a module lock.
    """
    os.makedirs(directory, exist_ok=True)
    record = dict(record)
    record.setdefault("type", "heartbeat")
    record.setdefault("pid", os.getpid())
    record.setdefault("t", time.time())
    record.setdefault("rss_bytes", read_rss_bytes())
    path = heartbeat_path(directory, int(record["pid"]))
    temp = path + ".tmp"
    try:
        with open(temp, "w") as handle:
            json.dump(record, handle, sort_keys=True)
        os.replace(temp, path)
    except BaseException:
        try:
            os.remove(temp)
        except OSError:
            pass
        raise
    return path


def read_status(directory: str) -> Dict[str, object]:
    """Aggregate every heartbeat under ``directory`` into one status dict.

    Lenient by design: torn, foreign, or malformed files are skipped —
    the monitor reads while writers are live.  Workers are ordered by
    shard index then pid; per-worker ``progress`` counters are summed
    into a fleet-wide ``progress`` total.
    """
    workers: List[Dict[str, object]] = []
    try:
        names = sorted(os.listdir(directory))
    except OSError:
        names = []
    for name in names:
        if not (name.startswith(HEARTBEAT_PREFIX) and name.endswith(HEARTBEAT_SUFFIX)):
            continue
        try:
            with open(os.path.join(directory, name)) as handle:
                record = json.load(handle)
        except (OSError, ValueError):
            continue
        if isinstance(record, dict) and record.get("type") == "heartbeat":
            workers.append(record)
    workers.sort(
        key=lambda r: (
            not isinstance(r.get("shard"), int),
            r.get("shard") if isinstance(r.get("shard"), int) else 0,
            r.get("pid") or 0,
        )
    )
    totals: Dict[str, int] = {}
    for record in workers:
        progress = record.get("progress")
        if not isinstance(progress, dict):
            continue
        for key, value in progress.items():
            try:
                totals[key] = totals.get(key, 0) + int(value)
            except (TypeError, ValueError):
                continue
    return {
        "type": "status",
        "generated": time.time(),
        "directory": directory,
        "workers": workers,
        "running": sum(1 for r in workers if r.get("state") == "running"),
        "done": sum(1 for r in workers if r.get("state") == "done"),
        "progress": totals,
    }


# -- progress counters -------------------------------------------------------


class RunProgress:
    """Cheap, thread-safe progress counters engines publish into.

    Disabled (the default), :meth:`advance` costs one attribute check.
    Enabled, counts accumulate under a lock, and — when a status
    directory is configured — a heartbeat record is published at most
    once per interval, which is what the live monitor reads mid-run.
    Fork-started workers inherit the parent's instance; per-pid state
    (counts, static fields, the lock) is re-initialized in the child so
    each process heartbeats only its own work.
    """

    def __init__(self) -> None:
        self.enabled = False
        self._lock = threading.Lock()
        self._pid = os.getpid()
        self._counts: Dict[str, int] = {}
        self._static: Dict[str, object] = {}
        self._directory: Optional[str] = None
        self._interval = DEFAULT_SAMPLE_INTERVAL
        self._last_beat = 0.0

    def _fork_reset(self) -> None:
        """Drop per-process state after a fork (keeps directory/interval)."""
        self._lock = threading.Lock()
        self._pid = os.getpid()
        self._counts = {}
        self._static = {}
        self._last_beat = 0.0

    def _ensure_process(self) -> None:
        if self._pid != os.getpid():  # inherited across a fork
            self._fork_reset()

    def configure(
        self,
        directory: Optional[str] = None,
        interval: Optional[float] = None,
        **static: object,
    ) -> "RunProgress":
        """Enable counting; ``directory=None`` keeps counters in-memory."""
        self._ensure_process()
        with self._lock:
            self.enabled = True
            if directory is not None:
                self._directory = directory
            if interval is not None:
                self._interval = max(MIN_SAMPLE_INTERVAL, float(interval))
            self._static.update(static)
        return self

    def activate_from_env(self) -> bool:
        """Enable publication when ``$REPRO_STATUS_DIR`` is set."""
        directory = status_directory()
        if directory is None:
            return False
        self.configure(directory=directory, interval=sample_interval())
        return True

    def set_context(self, **static: object) -> None:
        """Attach static fields (shard index, role, …) to heartbeats."""
        self._ensure_process()
        with self._lock:
            self._static.update(static)

    def advance(self, name: str, n: int = 1) -> None:
        """Add ``n`` to counter ``name`` (one attribute check when off)."""
        if not self.enabled:
            return
        self._ensure_process()
        beat = False
        with self._lock:
            self._counts[name] = self._counts.get(name, 0) + int(n)
            if self._directory is not None:
                now = time.monotonic()
                if now - self._last_beat >= self._interval:
                    self._last_beat = now
                    beat = True
        if beat:
            self.heartbeat(state="running")

    def counts(self) -> Dict[str, int]:
        """A snapshot copy of the counters."""
        with self._lock:
            return dict(self._counts)

    def heartbeat(self, state: str = "running", **fields: object) -> Optional[str]:
        """Publish an immediate heartbeat (None without a directory).

        Never raises on I/O failure — monitoring must not take down
        the run it is watching.
        """
        self._ensure_process()
        with self._lock:
            directory = self._directory
            record: Dict[str, object] = dict(self._static)
            record["progress"] = dict(self._counts)
        if directory is None:
            return None
        record["state"] = state
        record.update(fields)
        try:
            return write_heartbeat(directory, record)
        except OSError:
            return None

    def reset(self) -> None:
        """Back to the disabled, empty boot state (tests)."""
        with self._lock:
            self.enabled = False
            self._counts = {}
            self._static = {}
            self._directory = None
            self._interval = DEFAULT_SAMPLE_INTERVAL
            self._last_beat = 0.0


#: The process-wide progress instance engines publish into.
PROGRESS = RunProgress()

if hasattr(os, "register_at_fork"):  # pragma: no branch - POSIX everywhere here
    # A fork can catch PROGRESS._lock held by the sampler thread; give
    # the child a fresh lock (and fresh per-pid state) unconditionally.
    os.register_at_fork(after_in_child=PROGRESS._fork_reset)


# -- worker-task lifecycle (called from runtime.shard) -----------------------


def begin_worker_task(**static: object) -> None:
    """Mark this worker's current task in the live status stream.

    No-op unless ``$REPRO_STATUS_DIR`` is set (or the parent already
    configured :data:`PROGRESS` with a directory before forking).
    """
    if not PROGRESS.enabled and not PROGRESS.activate_from_env():
        return
    PROGRESS.set_context(**static)
    PROGRESS.heartbeat(state="running")


def end_worker_task(**fields: object) -> None:
    """Publish the task-done heartbeat for this worker."""
    if not PROGRESS.enabled:
        return
    PROGRESS.heartbeat(state="done", **fields)


# -- the background sampler --------------------------------------------------


class ResourceSampler:
    """Daemon thread recording an RSS/CPU/progress timeline.

    Each tick appends one record to :attr:`timeline` and — when a
    status directory is configured — publishes this process's
    heartbeat.  The shared metrics registry is only touched from
    :meth:`stop` (summary gauges), never from the sampler thread, so a
    pool fork can never catch the registry lock mid-sample.
    """

    def __init__(
        self,
        registry: Optional[object] = None,
        interval: Optional[float] = None,
        directory: Optional[str] = None,
        progress: Optional[RunProgress] = None,
    ) -> None:
        self.registry = registry
        self.interval = sample_interval() if interval is None else max(
            MIN_SAMPLE_INTERVAL, float(interval)
        )
        self.directory = directory
        self.progress = PROGRESS if progress is None else progress
        self.timeline: List[Dict[str, object]] = []
        self._stop_event = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._cpu0 = 0.0
        self._wall0 = 0.0
        self._peak_rss = 0

    def start(self) -> "ResourceSampler":
        """Begin sampling (idempotent)."""
        if self._thread is not None:
            return self
        self._cpu0 = read_cpu_seconds()
        self._wall0 = time.monotonic()
        self._stop_event.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-sampler", daemon=True
        )
        self._thread.start()
        return self

    def _run(self) -> None:
        last = (self._cpu0, self._wall0)
        while not self._stop_event.wait(self.interval):
            last = self._sample(*last)

    def _sample(self, last_cpu: float, last_wall: float) -> Tuple[float, float]:
        now = time.monotonic()
        cpu = read_cpu_seconds()
        rss = read_rss_bytes()
        cpu_pct = 100.0 * (cpu - last_cpu) / max(now - last_wall, 1e-9)
        progress = self.progress.counts()
        self._peak_rss = max(self._peak_rss, rss)
        self.timeline.append(
            {
                "t": time.time(),
                "elapsed": now - self._wall0,
                "rss_bytes": rss,
                "cpu_pct": cpu_pct,
                "progress": progress,
            }
        )
        if self.directory is not None:
            try:
                write_heartbeat(
                    self.directory,
                    {
                        "role": "driver",
                        "state": "running",
                        "progress": progress,
                        "rss_bytes": rss,
                        "cpu_pct": round(cpu_pct, 2),
                    },
                )
            except OSError:
                pass
        return cpu, now

    def stop(self) -> List[Dict[str, object]]:
        """Stop sampling, fold summary gauges, return the timeline.

        Always takes one final sample (its ``cpu_pct`` spans the whole
        run), so even sub-interval runs record a point.
        """
        if self._thread is not None:
            self._stop_event.set()
            self._thread.join(timeout=5.0)
            self._thread = None
        self._sample(self._cpu0, self._wall0)
        registry = self.registry
        if registry is not None:
            final = self.timeline[-1]
            registry.set_gauge("sampler.rss_peak_bytes", float(self._peak_rss))
            registry.set_gauge("sampler.rss_last_bytes", float(final["rss_bytes"]))
            registry.set_gauge("sampler.cpu_pct_mean", float(final["cpu_pct"]))
            registry.set_gauge("sampler.samples", float(len(self.timeline)))
            for name, value in self.progress.counts().items():
                registry.set_gauge("progress.%s" % name, float(value))
        if self.directory is not None:
            try:
                write_heartbeat(
                    self.directory,
                    {
                        "role": "driver",
                        "state": "done",
                        "progress": self.progress.counts(),
                        "rss_bytes": self._peak_rss,
                    },
                )
            except OSError:
                pass
        return self.timeline


__all__ = [
    "DEFAULT_SAMPLE_INTERVAL",
    "ENV_SAMPLE_INTERVAL",
    "ENV_STATUS_DIR",
    "HEARTBEAT_PREFIX",
    "HEARTBEAT_SUFFIX",
    "MIN_SAMPLE_INTERVAL",
    "PROGRESS",
    "ResourceSampler",
    "RunProgress",
    "begin_worker_task",
    "end_worker_task",
    "heartbeat_path",
    "read_cpu_seconds",
    "read_rss_bytes",
    "read_status",
    "sample_interval",
    "status_directory",
    "write_heartbeat",
]
