"""Run snapshots and trace diffs: the perf-regression gate.

A **run snapshot** is a small, committable JSON document distilled from
one observed run: the per-span summary of its trace (exact percentiles,
as ``repro obs summary`` computes them) plus the counters and gauges of
its exported Prometheus textfile.  ``repro obs snapshot`` writes one;
``repro obs diff A B`` compares two and — with ``--fail-on p95:50%`` —
exits non-zero when any span's latency regressed past the threshold,
which is how CI gates a PR against the committed baseline snapshot.

Either side of a diff may be a snapshot (``.json``) or a raw trace
(``.jsonl``), which is summarized on the fly.
"""

from __future__ import annotations

import dataclasses
import json
import os
import tempfile
from typing import Dict, List, Mapping, Optional, Tuple

from repro.obs.exporters import load_metrics, read_trace, summarize_trace

#: Version stamped into snapshot documents.
SNAPSHOT_SCHEMA_VERSION = 1

#: Span statistics a ``--fail-on`` threshold may target.
DIFF_STATS = ("mean", "p50", "p95", "max", "total", "count")

#: Baseline-side floor (seconds) under which a span is too fast to gate
#: on — sub-millisecond spans are dominated by scheduler noise.
DEFAULT_MIN_SECONDS = 0.001


@dataclasses.dataclass(frozen=True)
class FailOn:
    """A parsed ``--fail-on`` threshold, e.g. ``p95:50%``.

    Attributes:
        stat: one of :data:`DIFF_STATS`.
        percent: allowed relative increase before the diff fails.
    """

    stat: str
    percent: float


def parse_fail_on(spec: str) -> FailOn:
    """Parse ``<stat>:<pct>%`` (e.g. ``p95:50%``) into a :class:`FailOn`.

    Raises:
        ValueError: malformed spec or unknown statistic.
    """
    stat, sep, raw = spec.partition(":")
    stat = stat.strip()
    raw = raw.strip().rstrip("%")
    if not sep or stat not in DIFF_STATS or not raw:
        raise ValueError(
            "fail-on spec must look like 'p95:50%%' with a stat in {%s}, got %r"
            % (", ".join(DIFF_STATS), spec)
        )
    try:
        percent = float(raw)
    except ValueError:
        raise ValueError("fail-on threshold %r is not a number" % raw) from None
    if percent < 0.0:
        raise ValueError("fail-on threshold must be non-negative")
    return FailOn(stat=stat, percent=percent)


# -- snapshots ---------------------------------------------------------------


def build_snapshot(
    trace_path: Optional[str] = None,
    metrics_path: Optional[str] = None,
    label: Optional[str] = None,
) -> Dict[str, object]:
    """Distill trace + metrics artifacts into a snapshot document."""
    spans: Dict[str, Dict[str, float]] = {}
    counters: Dict[str, float] = {}
    gauges: Dict[str, float] = {}
    sources: List[str] = []
    if trace_path:
        spans = summarize_trace(read_trace(trace_path))
        sources.append(os.path.basename(trace_path))
    if metrics_path:
        metrics = load_metrics(metrics_path)
        counters = dict(metrics["counters"])  # type: ignore[arg-type]
        gauges = dict(metrics["gauges"])  # type: ignore[arg-type]
        sources.append(os.path.basename(metrics_path))
    return {
        "schema": SNAPSHOT_SCHEMA_VERSION,
        "kind": "run-snapshot",
        "label": label or " + ".join(sources),
        "spans": spans,
        "counters": counters,
        "gauges": gauges,
    }


def write_snapshot(path: str, snapshot: Mapping[str, object]) -> None:
    """Atomically write a snapshot document as pretty JSON."""
    directory = os.path.dirname(os.path.abspath(path)) or "."
    os.makedirs(directory, exist_ok=True)
    fd, temp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as handle:
            json.dump(snapshot, handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(temp_path, path)
    except BaseException:
        try:
            os.remove(temp_path)
        except OSError:
            pass
        raise


def _validate_snapshot(path: str, document: Dict[str, object]) -> None:
    """Shape-check a snapshot document before diffing touches it.

    A snapshot missing its ``spans``/``counters``/``gauges`` maps used
    to diff silently as empty (exit 0 — a vacuous pass for the CI
    gate), and non-mapping span statistics surfaced later as raw
    ``AttributeError`` tracebacks inside the fail-on loop; both are now
    load-time errors naming the file.
    """
    for section in ("spans", "counters", "gauges"):
        if section not in document:
            raise ValueError(
                "%s: snapshot is missing its %r section (regenerate it "
                "with `repro obs snapshot`)" % (path, section)
            )
        if not isinstance(document[section], dict):
            raise ValueError(
                "%s: snapshot section %r must be an object, got %s"
                % (path, section, type(document[section]).__name__)
            )
    for name, stats in document["spans"].items():  # type: ignore[union-attr]
        if not isinstance(stats, dict):
            raise ValueError(
                "%s: span %r statistics must be an object, got %s"
                % (path, name, type(stats).__name__)
            )


def load_snapshot(path: str) -> Dict[str, object]:
    """Load a run snapshot for diffing.

    ``.json`` files must be snapshot documents; anything else is read
    as a JSONL trace and summarized on the fly.

    Raises:
        OSError: missing or unreadable file (with the path named).
        ValueError: non-snapshot JSON, malformed sections, or an
            unsupported schema version.
    """
    if not os.path.exists(path):
        raise OSError(
            "snapshot file %r does not exist (write one with "
            "`repro obs snapshot --out %s`)" % (path, path)
        )
    if path.endswith(".json"):
        with open(path) as handle:
            try:
                document = json.load(handle)
            except json.JSONDecodeError as exc:
                raise ValueError("%s: not valid JSON: %s" % (path, exc)) from exc
        if not isinstance(document, dict) or document.get("kind") != "run-snapshot":
            raise ValueError("%s: not a run snapshot document" % path)
        schema = int(document.get("schema", 0))
        if schema > SNAPSHOT_SCHEMA_VERSION:
            raise ValueError(
                "%s: snapshot schema %d is newer than supported %d"
                % (path, schema, SNAPSHOT_SCHEMA_VERSION)
            )
        _validate_snapshot(path, document)
        return document
    snapshot = build_snapshot(trace_path=path)
    snapshot["label"] = os.path.basename(path)
    return snapshot


# -- diffing -----------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class SpanDelta:
    """One span's statistics across two snapshots.

    Attributes:
        name: span name.
        base / new: the per-stat summaries (missing side -> None).
    """

    name: str
    base: Optional[Mapping[str, float]]
    new: Optional[Mapping[str, float]]

    def change_percent(self, stat: str) -> Optional[float]:
        """Relative change of ``stat`` in percent (None when undefined)."""
        if self.base is None or self.new is None:
            return None
        base = float(self.base.get(stat, 0.0))
        new = float(self.new.get(stat, 0.0))
        if base <= 0.0:
            return None
        return 100.0 * (new - base) / base


@dataclasses.dataclass(frozen=True)
class Regression:
    """A span whose gated statistic grew past the threshold."""

    name: str
    stat: str
    base: float
    new: float
    percent: float


@dataclasses.dataclass
class DiffResult:
    """Everything ``repro obs diff`` computed.

    Attributes:
        spans: per-span deltas, union of both sides' span names.
        counter_deltas: ``{name: (base, new)}`` for differing counters.
        regressions: spans past the ``fail_on`` threshold (empty when
            no threshold was given or nothing regressed).
        fail_on: the applied threshold, if any.
    """

    spans: List[SpanDelta]
    counter_deltas: Dict[str, Tuple[float, float]]
    regressions: List[Regression]
    fail_on: Optional[FailOn] = None

    @property
    def failed(self) -> bool:
        """Whether the gate should exit non-zero."""
        return bool(self.fail_on and self.regressions)


def diff_snapshots(
    base: Mapping[str, object],
    new: Mapping[str, object],
    fail_on: Optional[FailOn] = None,
    min_seconds: float = DEFAULT_MIN_SECONDS,
) -> DiffResult:
    """Compare two snapshots (see module docstring).

    Args:
        base: the reference (committed baseline) snapshot.
        new: the candidate snapshot.
        fail_on: optional regression threshold.
        min_seconds: spans whose *baseline* gated statistic is below
            this floor are reported but never failed on.
    """
    base_spans: Mapping[str, Mapping[str, float]]
    new_spans: Mapping[str, Mapping[str, float]]
    base_spans = base.get("spans", {})  # type: ignore[assignment]
    new_spans = new.get("spans", {})  # type: ignore[assignment]
    names = sorted(set(base_spans) | set(new_spans))
    spans = [
        SpanDelta(name=name, base=base_spans.get(name), new=new_spans.get(name))
        for name in names
    ]
    regressions: List[Regression] = []
    if fail_on is not None:
        for delta in spans:
            if delta.base is None or delta.new is None:
                continue
            base_value = float(delta.base.get(fail_on.stat, 0.0))
            if base_value < min_seconds and fail_on.stat != "count":
                continue
            change = delta.change_percent(fail_on.stat)
            if change is not None and change > fail_on.percent:
                regressions.append(
                    Regression(
                        name=delta.name,
                        stat=fail_on.stat,
                        base=base_value,
                        new=float(delta.new.get(fail_on.stat, 0.0)),
                        percent=change,
                    )
                )
    base_counters: Mapping[str, float] = base.get("counters", {})  # type: ignore[assignment]
    new_counters: Mapping[str, float] = new.get("counters", {})  # type: ignore[assignment]
    counter_deltas = {
        name: (float(base_counters.get(name, 0.0)), float(new_counters.get(name, 0.0)))
        for name in sorted(set(base_counters) | set(new_counters))
        if base_counters.get(name) != new_counters.get(name)
    }
    return DiffResult(
        spans=spans,
        counter_deltas=counter_deltas,
        regressions=sorted(regressions, key=lambda r: -r.percent),
        fail_on=fail_on,
    )


def render_diff(
    result: DiffResult,
    base_label: str = "base",
    new_label: str = "new",
    max_counters: int = 20,
) -> str:
    """Render a diff as an aligned text report."""
    lines = ["run diff: %s -> %s" % (base_label, new_label)]
    comparable = [d for d in result.spans if d.base is not None and d.new is not None]
    if comparable:
        name_width = max(len(d.name) for d in comparable)
        lines.append(
            "  %-*s %10s %10s %10s %10s %8s"
            % (name_width, "span", "p50 old", "p50 new", "p95 old", "p95 new", "Δp95")
        )
        for delta in sorted(
            comparable,
            key=lambda d: -(d.change_percent("p95") or float("-inf")),
        ):
            change = delta.change_percent("p95")
            assert delta.base is not None and delta.new is not None
            lines.append(
                "  %-*s %9.4gs %9.4gs %9.4gs %9.4gs %7s%%"
                % (
                    name_width,
                    delta.name,
                    delta.base.get("p50", 0.0),
                    delta.new.get("p50", 0.0),
                    delta.base.get("p95", 0.0),
                    delta.new.get("p95", 0.0),
                    ("%+.1f" % change) if change is not None else "n/a",
                )
            )
    only_base = [d.name for d in result.spans if d.new is None]
    only_new = [d.name for d in result.spans if d.base is None]
    if only_base:
        lines.append("  only in %s: %s" % (base_label, ", ".join(only_base)))
    if only_new:
        lines.append("  only in %s: %s" % (new_label, ", ".join(only_new)))
    if result.counter_deltas:
        lines.append("  counter deltas:")
        for index, (name, (old, new)) in enumerate(result.counter_deltas.items()):
            if index >= max_counters:
                lines.append(
                    "    ... %d more" % (len(result.counter_deltas) - max_counters)
                )
                break
            lines.append("    %-32s %g -> %g" % (name, old, new))
    if result.fail_on is not None:
        if result.regressions:
            lines.append(
                "  REGRESSIONS past %s:%+.0f%%:"
                % (result.fail_on.stat, result.fail_on.percent)
            )
            for regression in result.regressions:
                lines.append(
                    "    %s %s %.4gs -> %.4gs (%+.1f%%)"
                    % (
                        regression.name,
                        regression.stat,
                        regression.base,
                        regression.new,
                        regression.percent,
                    )
                )
        else:
            lines.append(
                "  no regression past %s:%.0f%%"
                % (result.fail_on.stat, result.fail_on.percent)
            )
    return "\n".join(lines)


__all__ = [
    "DEFAULT_MIN_SECONDS",
    "DIFF_STATS",
    "DiffResult",
    "FailOn",
    "Regression",
    "SNAPSHOT_SCHEMA_VERSION",
    "SpanDelta",
    "build_snapshot",
    "diff_snapshots",
    "load_snapshot",
    "parse_fail_on",
    "render_diff",
    "write_snapshot",
]
