"""Self-contained HTML run reports from trace + metrics + fleet events.

``repro obs report`` renders everything one observed run produced into
a single HTML file an engineer can open (or CI can archive) with zero
runtime dependencies: all CSS is inline, all charts are inline SVG, and
nothing is fetched from the network.

Sections (each present only when its input is):

- **span waterfall** — the trace's spans on a shared timeline,
  indented by nesting depth (the longest spans when the trace is huge);
- **span summary** — the exact-percentile table ``repro obs summary``
  prints, as HTML;
- **runtime metrics** — cache / pool / job counters and gauges from the
  Prometheus textfile, with a label-overflow warning when any metric
  dropped series;
- **fleet health** — AFR-by-type bar chart, the burst / self-correlation
  table (the paper's P(2) vs P(1)^2/2 check), and the top failing shelf
  models, all folded from the fleet event stream by
  :class:`repro.obs.health.FleetHealth`.
"""

from __future__ import annotations

import html
import math
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.obs.health import FleetHealth
from repro.obs.registry import LABELS_DROPPED, parse_series_key
from repro.obs.exporters import summarize_trace

#: Most spans the waterfall draws (longest-duration spans win).
WATERFALL_MAX_SPANS = 80

_CSS = """
body { font: 13px/1.45 -apple-system, 'Segoe UI', Roboto, sans-serif;
       margin: 2em auto; max-width: 70em; color: #1a1a24; }
h1 { font-size: 1.5em; border-bottom: 2px solid #27636e; padding-bottom: .3em; }
h2 { font-size: 1.15em; margin-top: 2em; color: #27636e; }
table { border-collapse: collapse; margin: .7em 0; }
th, td { border: 1px solid #d5d9e0; padding: .25em .6em; text-align: right; }
th { background: #eef1f5; }
td.name, th.name { text-align: left; font-family: ui-monospace, monospace; }
.warn { background: #fff3cd; border: 1px solid #e0c36a; padding: .5em .8em;
        border-radius: 4px; margin: .6em 0; }
.meta { color: #667; }
svg { background: #fafbfc; border: 1px solid #e2e5ea; border-radius: 4px; }
svg text { font: 10px ui-monospace, monospace; fill: #333; }
svg text.lane { font-weight: 600; fill: #27636e; }
"""

#: Bar palette, keyed by a stable hash of the span's root name.
_PALETTE = (
    "#27636e", "#b4543c", "#5b8c5a", "#7b6d8d", "#c2963f",
    "#476a92", "#a05c7b", "#6b8e23",
)


def _esc(value: object) -> str:
    return html.escape(str(value), quote=True)


def _fmt_seconds(seconds: float) -> str:
    if seconds >= 1.0:
        return "%.3gs" % seconds
    if seconds >= 1e-3:
        return "%.3gms" % (seconds * 1e3)
    return "%.3gµs" % (seconds * 1e6)


def _table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], name_cols: int = 1
) -> str:
    """An HTML table; the first ``name_cols`` columns left-align."""
    parts = ["<table><tr>"]
    for index, header in enumerate(headers):
        cls = ' class="name"' if index < name_cols else ""
        parts.append("<th%s>%s</th>" % (cls, _esc(header)))
    parts.append("</tr>")
    for row in rows:
        parts.append("<tr>")
        for index, cell in enumerate(row):
            cls = ' class="name"' if index < name_cols else ""
            parts.append("<td%s>%s</td>" % (cls, _esc(cell)))
        parts.append("</tr>")
    parts.append("</table>")
    return "".join(parts)


# -- span waterfall ----------------------------------------------------------


def _span_depths(events: Sequence[Mapping[str, object]]) -> Dict[object, int]:
    """Nesting depth per span id (0 for roots, parents resolved iteratively)."""
    parents = {e.get("span_id"): e.get("parent_id") for e in events}
    depths: Dict[object, int] = {}
    for span_id in parents:
        depth, cursor = 0, parents.get(span_id)
        while cursor is not None and cursor in parents and depth < 32:
            depth += 1
            cursor = parents.get(cursor)
        depths[span_id] = depth
    return depths


def _lane_order(spans: Sequence[Mapping[str, object]]) -> List[object]:
    """Pids in lane order: first span start wins, so the driver leads."""
    seen: List[object] = []
    for event in spans:
        pid = event.get("pid")
        if pid not in seen:
            seen.append(pid)
    return seen


def render_waterfall(events: Sequence[Mapping[str, object]]) -> str:
    """The trace's spans as an inline-SVG timeline.

    A merged distributed trace renders as one **lane per process**:
    the driver's lane first, then each worker pid (ordered by first
    span start), with a lane-header row separating them — the
    per-process / per-shard view of a sharded run.  Single-process
    traces draw exactly as before, with no lane headers.
    """
    spans = [e for e in events if "start" in e and "duration" in e]
    if not spans:
        return "<p class='meta'>(no spans recorded)</p>"
    dropped = 0
    if len(spans) > WATERFALL_MAX_SPANS:
        keep = sorted(spans, key=lambda e: -float(e["duration"]))[:WATERFALL_MAX_SPANS]
        dropped = len(spans) - len(keep)
        spans = keep
    spans.sort(key=lambda e: (float(e["start"]), -float(e["duration"])))
    depths = _span_depths(spans)
    lanes = _lane_order(spans)
    multi = len(lanes) > 1
    rows: List[Tuple[str, object]] = []
    for pid in lanes:
        lane_spans = [e for e in spans if e.get("pid") == pid]
        if multi:
            label = "process %s%s — %d span%s" % (
                pid,
                " (driver)" if pid == lanes[0] else "",
                len(lane_spans),
                "" if len(lane_spans) == 1 else "s",
            )
            rows.append(("lane", label))
        rows.extend(("span", event) for event in lane_spans)
    t0 = min(float(e["start"]) for e in spans)
    t1 = max(float(e["start"]) + float(e["duration"]) for e in spans)
    total = max(t1 - t0, 1e-9)
    width, row_height, label_width = 760, 16, 230
    height = row_height * len(rows) + 24
    parts = [
        '<svg width="%d" height="%d" role="img" aria-label="span waterfall">'
        % (width + label_width, height)
    ]
    # Time axis ticks along the top.
    for tick in range(5):
        t = t0 + total * tick / 4.0
        x = label_width + (width - 60) * tick / 4.0
        parts.append(
            '<text x="%.1f" y="12">%s</text>' % (x, _esc(_fmt_seconds(t - t0)))
        )
    for row, (kind, payload) in enumerate(rows):
        y = 20 + row * row_height
        if kind == "lane":
            parts.append(
                '<rect x="0" y="%.1f" width="%d" height="%d" fill="#eef1f5"/>'
                % (y + 1, width + label_width, row_height - 2)
            )
            parts.append(
                '<text x="4" y="%.1f" class="lane">%s</text>'
                % (y + 11, _esc(payload))
            )
            continue
        event = payload
        name = str(event.get("name", "?"))
        start = float(event["start"]) - t0
        duration = float(event["duration"])
        depth = depths.get(event.get("span_id"), 0)
        x = label_width + (width - 60) * (start / total)
        bar = max(1.0, (width - 60) * (duration / total))
        color = _PALETTE[hash(name.split(".", 1)[0]) % len(_PALETTE)]
        parts.append(
            '<text x="%d" y="%.1f">%s%s</text>'
            % (4 + depth * 10, y + 11, "&#183;" * min(depth, 6), _esc(name[:34]))
        )
        parts.append(
            '<rect x="%.1f" y="%.1f" width="%.1f" height="%d" fill="%s">'
            "<title>%s: %s</title></rect>"
            % (x, y + 2, bar, row_height - 5, color, _esc(name),
               _esc(_fmt_seconds(duration)))
        )
    parts.append("</svg>")
    note = (
        "<p class='meta'>showing the %d longest of %d spans</p>"
        % (len(spans), len(spans) + dropped)
        if dropped
        else ""
    )
    return "".join(parts) + note


def _summary_section(events: Sequence[Mapping[str, object]]) -> str:
    summary = summarize_trace(events)
    rows = []
    for name in sorted(summary, key=lambda n: -summary[n]["total"]):
        stats = summary[name]
        rows.append(
            (
                name,
                int(stats["count"]),
                _fmt_seconds(stats["total"]),
                _fmt_seconds(stats["mean"]),
                _fmt_seconds(stats["p50"]),
                _fmt_seconds(stats["p95"]),
                _fmt_seconds(stats["max"]),
                int(stats["errors"]) or "",
            )
        )
    return _table(
        ("span", "count", "total", "mean", "p50", "p95", "max", "errors"), rows
    )


# -- metrics section ---------------------------------------------------------


def _metrics_section(metrics: Mapping[str, Dict[str, object]]) -> str:
    parts: List[str] = []
    counters: Mapping[str, float] = metrics.get("counters", {})  # type: ignore[assignment]
    gauges: Mapping[str, float] = metrics.get("gauges", {})  # type: ignore[assignment]
    # Matches both wire forms: the raw registry key (obs.labels_dropped)
    # and the Prometheus-sanitized one (repro_obs_labels_dropped).
    dropped = {
        key: value
        for key, value in counters.items()
        if parse_series_key(key)[0]
        .replace(".", "_")
        .endswith(LABELS_DROPPED.replace(".", "_"))
    }
    for key, value in sorted(dropped.items()):
        _, labels = parse_series_key(key)
        parts.append(
            "<div class='warn'>metric <code>%s</code> dropped %d recording(s) "
            "past the label-cardinality cap</div>"
            % (_esc(labels.get("metric", "?")), int(value))
        )
    if counters:
        rows = [
            (key, "%g" % value)
            for key, value in sorted(counters.items())
            if key not in dropped
        ]
        parts.append("<h3>counters</h3>" + _table(("series", "value"), rows))
    if gauges:
        rows = [(key, "%g" % value) for key, value in sorted(gauges.items())]
        parts.append("<h3>gauges</h3>" + _table(("series", "value"), rows))
    hists: Mapping[str, Mapping[str, object]]
    hists = metrics.get("histograms", {})  # type: ignore[assignment]
    if hists:
        rows = []
        for key, hist in sorted(hists.items()):
            count = float(hist.get("count", 0.0))
            total = float(hist.get("sum", 0.0))
            mean = total / count if count else 0.0
            rows.append((key, int(count), _fmt_seconds(total), _fmt_seconds(mean)))
        parts.append(
            "<h3>latency histograms</h3>"
            + _table(("series", "count", "sum", "mean"), rows)
        )
    return "".join(parts) or "<p class='meta'>(no metrics recorded)</p>"


# -- fleet health section ----------------------------------------------------


def _bar_chart(pairs: Sequence[Tuple[str, float]], unit: str) -> str:
    """Horizontal bars with value labels, inline SVG."""
    if not pairs:
        return "<p class='meta'>(no data)</p>"
    peak = max(value for _, value in pairs) or 1.0
    width, row_height, label_width = 560, 22, 170
    height = row_height * len(pairs) + 8
    parts = ['<svg width="%d" height="%d">' % (width + label_width, height)]
    for row, (name, value) in enumerate(pairs):
        y = 4 + row * row_height
        bar = max(1.0, (width - 110) * (value / peak))
        color = _PALETTE[row % len(_PALETTE)]
        parts.append('<text x="4" y="%.1f">%s</text>' % (y + 14, _esc(name[:24])))
        parts.append(
            '<rect x="%d" y="%.1f" width="%.1f" height="%d" fill="%s"/>'
            % (label_width, y + 3, bar, row_height - 8, color)
        )
        parts.append(
            '<text x="%.1f" y="%.1f">%.3g%s</text>'
            % (label_width + bar + 6, y + 14, value, _esc(unit))
        )
    parts.append("</svg>")
    return "".join(parts)


def _health_section(health: FleetHealth) -> str:
    parts: List[str] = []
    if health.fleet is not None:
        info = health.fleet
        parts.append(
            "<p class='meta'>fleet: %d systems, %d shelves, %d RAID groups, "
            "%d disks; %d failure events over %.2f simulated years</p>"
            % (
                info.systems, info.shelves, info.raid_groups, info.disks,
                health.failures, info.duration_seconds / (365.25 * 86400.0),
            )
        )
    afr = health.afr_by_type()
    if afr:
        parts.append("<h3>annualized failure rate by type</h3>")
        parts.append(_bar_chart(sorted(afr.items(), key=lambda kv: -kv[1]), "%"))
    parts.append("<h3>burst / self-correlation check (P(2) vs P(1)&#178;/2)</h3>")
    rows = []
    for scope in ("shelf", "raid_group"):
        check = health.burst_check(scope)
        inflation = check.inflation
        rows.append(
            (
                scope,
                check.n_cells,
                check.count_exactly_one,
                check.count_exactly_two,
                "%.4g" % check.p1,
                "%.4g" % check.p2_empirical,
                "%.4g" % check.p2_theoretical,
                ("%.3gx" % inflation) if math.isfinite(inflation) else "&#8734;",
                "yes" if check.bursty else "no",
            )
        )
    parts.append(
        _table(
            (
                "scope", "windows", "exactly 1", "exactly 2",
                "P(1)", "P(2)", "P(1)²/2", "inflation", "bursty",
            ),
            rows,
        )
    )
    top = health.top_shelf_models()
    if top:
        parts.append("<h3>top failing shelf models</h3>")
        parts.append(_table(("shelf model", "failures"), top))
    return "".join(parts)


# -- assembly ----------------------------------------------------------------


def render_report(
    trace_events: Optional[Sequence[Mapping[str, object]]] = None,
    metrics: Optional[Mapping[str, Dict[str, object]]] = None,
    fleet_events: Optional[Sequence[Mapping[str, object]]] = None,
    title: str = "repro run report",
    subtitle: str = "",
) -> str:
    """Build the full self-contained HTML document.

    Args:
        trace_events: span events (``read_trace`` output).
        metrics: parsed Prometheus payload (``parse_prometheus`` output).
        fleet_events: fleet event dicts (``read_events`` output).
        title / subtitle: report header lines.
    """
    sections: List[str] = []
    if trace_events is not None:
        sections.append("<h2>span waterfall</h2>" + render_waterfall(trace_events))
        sections.append("<h2>span summary</h2>" + _summary_section(trace_events))
    if metrics is not None:
        sections.append("<h2>runtime metrics</h2>" + _metrics_section(metrics))
    if fleet_events is not None:
        health = FleetHealth().ingest_all(fleet_events)
        sections.append("<h2>fleet health</h2>" + _health_section(health))
    if not sections:
        sections.append("<p class='meta'>(no inputs provided)</p>")
    return (
        "<!DOCTYPE html>\n<html lang='en'><head><meta charset='utf-8'>"
        "<title>%s</title><style>%s</style></head><body>"
        "<h1>%s</h1>%s%s</body></html>\n"
        % (
            _esc(title),
            _CSS,
            _esc(title),
            "<p class='meta'>%s</p>" % _esc(subtitle) if subtitle else "",
            "".join(sections),
        )
    )


def write_report(path: str, html_text: str) -> None:
    """Write the rendered report to ``path``."""
    with open(path, "w") as handle:
        handle.write(html_text)


__all__ = [
    "WATERFALL_MAX_SPANS",
    "render_report",
    "render_waterfall",
    "write_report",
]
