"""Metrics registry: labeled counters, gauges, and latency histograms.

The registry generalizes what :class:`repro.runtime.RuntimeMetrics`
used to implement privately: dotted-name counters (``cache.hit``),
gauges (``pool.workers``), and fixed-bucket latency histograms
(``job.latency``), now with optional **labels** (``inc("sim.events",
5, scenario="quick")``) and a per-metric cap on label-set cardinality
so an unbounded label value (a disk id, a timestamp) cannot grow the
registry without bound.

Series are stored under flattened string keys — ``name`` for the
unlabeled series, ``name{k=v,...}`` (keys sorted) for labeled ones —
which keeps :meth:`MetricsRegistry.snapshot` a plain picklable dict
that older snapshots (without gauges or labels) merge into cleanly.

A registry constructed with ``enabled=False`` is a no-op: every
recording method returns after a single attribute check, which is what
keeps disabled observability effectively free on hot paths.  All
mutation happens under one lock, so threads may record concurrently
and a flush/snapshot never sees a half-updated histogram.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

#: Upper bucket bounds (seconds) for latency histograms; observations
#: beyond the last bound land in an overflow bucket.
DEFAULT_BOUNDS = (0.001, 0.005, 0.02, 0.1, 0.5, 2.0, 10.0, 60.0, 300.0)

#: Default cap on distinct label sets per metric name.
DEFAULT_MAX_LABEL_SETS = 64

#: Label key marking series that overflowed the cardinality cap.
OVERFLOW_LABEL = "__overflow__"

#: Counter recording label-cardinality overflow, one series per
#: affected metric: ``obs.labels_dropped{metric=<name>}`` counts the
#: recordings that collapsed into the ``__overflow__`` series.
LABELS_DROPPED = "obs.labels_dropped"


def series_key(name: str, labels: Mapping[str, object]) -> str:
    """Flattened storage key: ``name`` or ``name{k=v,...}`` (keys sorted)."""
    if not labels:
        return name
    inner = ",".join("%s=%s" % (k, labels[k]) for k in sorted(labels))
    return "%s{%s}" % (name, inner)


def parse_series_key(key: str) -> Tuple[str, Dict[str, str]]:
    """Invert :func:`series_key` into ``(name, labels)``."""
    if not key.endswith("}") or "{" not in key:
        return key, {}
    name, _, inner = key.partition("{")
    labels: Dict[str, str] = {}
    for part in inner[:-1].split(","):
        if part:
            label, _, value = part.partition("=")
            labels[label] = value
    return name, labels


class Histogram:
    """Fixed-bucket latency histogram (seconds).

    Attributes:
        bounds: upper bucket bounds; one overflow bucket follows.
        counts: per-bucket observation counts (len(bounds) + 1).
        count / total / max: summary aggregates.
    """

    def __init__(self, bounds: Sequence[float] = DEFAULT_BOUNDS) -> None:
        self.bounds = tuple(float(b) for b in bounds)
        self.counts: List[int] = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.max = 0.0

    def observe(self, seconds: float) -> None:
        """Record one latency observation."""
        seconds = float(seconds)
        for index, bound in enumerate(self.bounds):
            if seconds <= bound:
                self.counts[index] += 1
                break
        else:
            self.counts[-1] += 1
        self.count += 1
        self.total += seconds
        self.max = max(self.max, seconds)

    @property
    def mean(self) -> float:
        """Mean observed latency (0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Upper bound of the bucket holding the ``q`` quantile.

        A conservative (bucketed) estimate; the overflow bucket reports
        the exact observed maximum.
        """
        if not self.count:
            return 0.0
        target = q * self.count
        cumulative = 0
        for index, bucket_count in enumerate(self.counts):
            cumulative += bucket_count
            if cumulative >= target:
                if index < len(self.bounds):
                    return self.bounds[index]
                return self.max
        return self.max

    def snapshot(self) -> Dict[str, object]:
        """A picklable dict capturing this histogram's full state."""
        return {
            "bounds": self.bounds,
            "counts": tuple(self.counts),
            "count": self.count,
            "total": self.total,
            "max": self.max,
        }

    def merge(self, snapshot: Mapping[str, object]) -> None:
        """Fold another histogram's :meth:`snapshot` into this one."""
        if tuple(snapshot["bounds"]) != self.bounds:  # type: ignore[arg-type]
            raise ValueError("cannot merge histograms with different bounds")
        for index, n in enumerate(snapshot["counts"]):  # type: ignore[arg-type]
            self.counts[index] += int(n)
        self.count += int(snapshot["count"])  # type: ignore[arg-type]
        self.total += float(snapshot["total"])  # type: ignore[arg-type]
        self.max = max(self.max, float(snapshot["max"]))  # type: ignore[arg-type]


class MetricsRegistry:
    """Counters + gauges + histograms under one lock (see module docstring).

    Args:
        enabled: ``False`` turns every recording method into a no-op
            guarded by a single attribute check.
        max_label_sets: cap on distinct label sets per metric name;
            excess label sets collapse into one ``__overflow__`` series
            so the registry's size stays bounded.
    """

    def __init__(
        self,
        enabled: bool = True,
        max_label_sets: int = DEFAULT_MAX_LABEL_SETS,
    ) -> None:
        self.enabled = enabled
        self.max_label_sets = max_label_sets
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._label_sets: Dict[str, int] = {}

    # -- recording -----------------------------------------------------------

    def increment(self, name: str, n: int = 1, /, **labels: object) -> None:
        """Add ``n`` to counter ``name`` (creating it at 0)."""
        if not self.enabled:
            return
        with self._lock:
            key = self._series(name, labels, self._counters)
            self._counters[key] = self._counters.get(key, 0) + n

    def set_gauge(self, name: str, value: float, /, **labels: object) -> None:
        """Set gauge ``name`` to ``value`` (last write wins)."""
        if not self.enabled:
            return
        with self._lock:
            key = self._series(name, labels, self._gauges)
            self._gauges[key] = float(value)

    def observe(self, name: str, seconds: float, /, **labels: object) -> None:
        """Record a latency observation in histogram ``name``."""
        if not self.enabled:
            return
        with self._lock:
            key = self._series(name, labels, self._histograms)
            hist = self._histograms.get(key)
            if hist is None:
                hist = self._histograms[key] = Histogram()
            hist.observe(seconds)

    # -- reading -------------------------------------------------------------

    def count(self, name: str, /, **labels: object) -> int:
        """Current value of counter ``name`` (0 if never incremented)."""
        return self._counters.get(series_key(name, labels), 0)

    def gauge(self, name: str, /, **labels: object) -> float:
        """Current value of gauge ``name`` (0.0 if never set)."""
        return self._gauges.get(series_key(name, labels), 0.0)

    def histogram(self, name: str, /, **labels: object) -> Histogram:
        """Histogram ``name`` (an empty one if never observed)."""
        return self._histograms.get(series_key(name, labels), Histogram())

    def series(self) -> Dict[str, Dict[str, object]]:
        """All live series keys per kind (for exporters and tests)."""
        with self._lock:
            return {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "histograms": dict(self._histograms),
            }

    # -- transport -----------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """A picklable dict of all counters, gauges, and histograms."""
        with self._lock:
            return {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "histograms": {
                    name: hist.snapshot()
                    for name, hist in self._histograms.items()
                },
            }

    def merge(self, snapshot: Mapping[str, object]) -> None:
        """Fold another registry's :meth:`snapshot` into this one.

        Accepts snapshots without a ``gauges`` section (the pre-obs
        :class:`RuntimeMetrics` wire format).  Merging bypasses the
        ``enabled`` switch: a disabled parent can still *collect*.
        """
        counters: Mapping[str, int] = snapshot.get("counters", {})  # type: ignore[assignment]
        gauges: Mapping[str, float] = snapshot.get("gauges", {})  # type: ignore[assignment]
        histograms: Mapping[str, Mapping[str, object]] = snapshot.get(  # type: ignore[assignment]
            "histograms", {}
        )
        with self._lock:
            for name, value in counters.items():
                self._counters[name] = self._counters.get(name, 0) + int(value)
            for name, value in gauges.items():
                self._gauges[name] = float(value)
            for name, hist in histograms.items():
                if name not in self._histograms:
                    bounds = tuple(hist["bounds"])  # type: ignore[arg-type]
                    self._histograms[name] = Histogram(bounds)
                self._histograms[name].merge(hist)

    # -- rendering -----------------------------------------------------------

    def report(self, title: str = "metrics") -> str:
        """Render counters and latency summaries as an aligned text block."""
        lines = [title]
        if not self._counters and not self._gauges and not self._histograms:
            lines.append("  (no activity recorded)")
            return "\n".join(lines)
        for name in sorted(self._counters):
            lines.append("  %-24s %d" % (name, self._counters[name]))
        for name in sorted(self._gauges):
            lines.append("  %-24s %g" % (name, self._gauges[name]))
        for name in sorted(self._histograms):
            hist = self._histograms[name]
            lines.append(
                "  %-24s n=%d mean=%.3gs p50<=%.3gs p95<=%.3gs max=%.3gs"
                % (
                    name,
                    hist.count,
                    hist.mean,
                    hist.quantile(0.50),
                    hist.quantile(0.95),
                    hist.max,
                )
            )
        return "\n".join(lines)

    # -- internals -----------------------------------------------------------

    def _series(
        self,
        name: str,
        labels: Mapping[str, object],
        store: Mapping[str, object],
    ) -> str:
        """Resolve the storage key, enforcing the label cardinality cap."""
        if not labels:
            return name
        key = series_key(name, labels)
        if key in store:
            return key
        used = self._label_sets.get(name, 0)
        if used >= self.max_label_sets:
            # Overflow is no longer silent: each collapsed recording
            # bumps a per-metric drop counter that exporters, the CLI
            # summary, and the run report surface as a warning.
            dropped_key = series_key(LABELS_DROPPED, {"metric": name})
            self._counters[dropped_key] = self._counters.get(dropped_key, 0) + 1
            return series_key(name, {OVERFLOW_LABEL: "true"})
        self._label_sets[name] = used + 1
        return key


def merged(registries: Sequence[MetricsRegistry]) -> MetricsRegistry:
    """A fresh registry holding the union of several registries."""
    union = MetricsRegistry()
    for registry in registries:
        union.merge(registry.snapshot())
    return union


__all__ = [
    "DEFAULT_BOUNDS",
    "DEFAULT_MAX_LABEL_SETS",
    "Histogram",
    "LABELS_DROPPED",
    "MetricsRegistry",
    "OVERFLOW_LABEL",
    "merged",
    "parse_series_key",
    "series_key",
]
