"""Timing spans: structured JSONL trace events with parent links.

A span measures one named region of work::

    with obs.span("simulate.fleet", scenario="quick"):
        ...

On exit the span appends one event to the process-wide buffer:
``name``, ``span_id``, ``parent_id`` (the span open on the same thread
when this one started, or ``None``), ``start`` (seconds since the
tracer's monotonic epoch), ``duration``, ``pid``, and the span's
attributes.  Events are buffered in memory and written by
:meth:`Tracer.flush` as one atomic JSONL file (temp file +
``os.replace``), whose first line is a ``meta`` record mapping the
monotonic epoch back to wall-clock time.

Nesting is tracked per thread with :class:`threading.local`.  Worker
*processes* have their own tracer: the parent serializes a
:class:`TraceContext` into the pool payload, the worker adopts it
(:meth:`Tracer.adopt`) and flushes a per-process segment file
(``trace-seg-<pid>.jsonl``, :meth:`Tracer.flush_segment`), and the
parent folds every segment back into its own buffer with fresh span
ids, correct parent links, and wall-clock-aligned starts
(:meth:`Tracer.absorb_segments`) — so a sharded run exports one merged
trace (see docs/OBSERVABILITY.md, "The distributed trace model").

Profiling rides on spans: with ``REPRO_PROFILE=<prefix>`` every span
whose name starts with the prefix runs under :mod:`cProfile` and dumps
``profile-<name>-<span_id>.pstats`` next to the trace (or into
``$REPRO_PROFILE_DIR``), and the event records the dump path.
"""

from __future__ import annotations

import cProfile
import dataclasses
import hashlib
import json
import os
import tempfile
import threading
import time
from typing import Dict, List, Optional, Tuple

from repro import envvars

#: Worker segment files match ``SEGMENT_PREFIX + <pid> + SEGMENT_SUFFIX``.
SEGMENT_PREFIX = "trace-seg-"
SEGMENT_SUFFIX = ".jsonl"


@dataclasses.dataclass(frozen=True)
class TraceContext:
    """The picklable capsule that carries a trace across processes.

    Built by :meth:`Tracer.context` in the parent, shipped inside the
    :class:`~repro.runtime.pool.WorkerPool` payload, and adopted by the
    worker's own tracer.  ``parent_span_id`` is the parent-process span
    open when the payload was submitted — worker root spans are
    re-parented onto it at merge time; ``epoch_wall`` lets the merge
    translate the worker's monotonic offsets onto the parent's clock.
    """

    trace_id: str
    parent_span_id: Optional[int]
    epoch_wall: float
    segment_dir: str
    profile_prefix: Optional[str] = None


class NullSpan:
    """The no-op span returned while tracing is disabled.

    A shared singleton: entering returns itself, exiting does nothing,
    so a disabled ``with obs.span(...):`` costs one attribute check
    plus an (empty) context-manager protocol round trip.
    """

    __slots__ = ()

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None


NULL_SPAN = NullSpan()


class Span:
    """One live span; created by :meth:`Tracer.span`, used as a context
    manager."""

    __slots__ = (
        "tracer",
        "name",
        "attrs",
        "span_id",
        "parent_id",
        "_start",
        "_profile",
    )

    def __init__(self, tracer: "Tracer", name: str, attrs: Dict[str, object]) -> None:
        self.tracer = tracer
        self.name = name
        self.attrs = attrs
        self.span_id: Optional[int] = None
        self.parent_id: Optional[int] = None
        self._start = 0.0
        self._profile: Optional[cProfile.Profile] = None

    def __enter__(self) -> "Span":
        tracer = self.tracer
        self.span_id = tracer.next_id()
        stack = tracer.stack()
        self.parent_id = stack[-1] if stack else None
        stack.append(self.span_id)
        prefix = tracer.profile_prefix
        if prefix is not None and self.name.startswith(prefix):
            self._profile = cProfile.Profile()
            self._profile.enable()
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        duration = time.perf_counter() - self._start
        if self._profile is not None:
            self._profile.disable()
            self.attrs["profile"] = self.tracer.dump_profile(
                self._profile, self.name, self.span_id
            )
        stack = self.tracer.stack()
        if stack and stack[-1] == self.span_id:
            stack.pop()
        event: Dict[str, object] = {
            "type": "span",
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self._start - self.tracer.epoch_perf,
            "duration": duration,
            "pid": os.getpid(),
        }
        if exc_type is not None:
            event["error"] = getattr(exc_type, "__name__", str(exc_type))
        if self.attrs:
            event["attrs"] = {k: _jsonable(v) for k, v in self.attrs.items()}
        self.tracer.record(event)


class Tracer:
    """Process-wide span collector (see module docstring).

    Args:
        enabled: collect spans; ``False`` is the no-op default.
        profile_prefix: span-name prefix that triggers per-span
            cProfile dumps (usually from ``$REPRO_PROFILE``).
        profile_dir: where profile dumps land (``$REPRO_PROFILE_DIR``
            or the working directory).
    """

    def __init__(
        self,
        enabled: bool = False,
        profile_prefix: Optional[str] = None,
        profile_dir: Optional[str] = None,
    ) -> None:
        self.enabled = enabled
        self.profile_prefix = profile_prefix
        self.profile_dir = profile_dir
        self.epoch_perf = time.perf_counter()
        self.epoch_wall = time.time()
        self.adopted: Optional[TraceContext] = None
        self.pid = os.getpid()
        self._trace_id: Optional[str] = None
        self._lock = threading.Lock()
        self._events: List[Dict[str, object]] = []
        self._next_id = 0
        self._local = threading.local()

    # -- span plumbing -------------------------------------------------------

    def span(self, name: str, attrs: Optional[Dict[str, object]] = None) -> Span:
        """A new span (context manager); no-op object when disabled."""
        return Span(self, name, dict(attrs or {}))

    def next_id(self) -> int:
        with self._lock:
            self._next_id += 1
            return self._next_id

    def stack(self) -> List[int]:
        """This thread's stack of open span ids."""
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def record(self, event: Dict[str, object]) -> None:
        """Append one finished event to the buffer."""
        with self._lock:
            self._events.append(event)

    def current_span_id(self) -> Optional[int]:
        """The innermost open span id on this thread (None at top level)."""
        stack = self.stack()
        return stack[-1] if stack else None

    # -- buffer management ---------------------------------------------------

    def events(self) -> List[Dict[str, object]]:
        """A snapshot copy of the buffered events."""
        with self._lock:
            return list(self._events)

    def clear(self) -> None:
        """Drop all buffered events (tests, or after a flush)."""
        with self._lock:
            self._events = []

    def meta(self) -> Dict[str, object]:
        """The header record written as the first JSONL line."""
        meta: Dict[str, object] = {
            "type": "meta",
            "epoch_wall": self.epoch_wall,
            "pid": os.getpid(),
            "events": len(self._events),
            "trace_id": self.trace_id(),
        }
        if self.adopted is not None:
            meta["parent_span_id"] = self.adopted.parent_span_id
        return meta

    def flush(self, path: str) -> int:
        """Write the full buffer to ``path`` as JSONL, atomically.

        Returns the number of span events written.  The write goes to a
        temp file in the destination directory and is published with
        ``os.replace``, so a concurrent reader never sees a torn file.
        """
        events = self.events()
        directory = os.path.dirname(os.path.abspath(path)) or "."
        os.makedirs(directory, exist_ok=True)
        fd, temp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(json.dumps(self.meta()) + "\n")
                for event in events:
                    handle.write(json.dumps(event) + "\n")
            os.replace(temp_path, path)
        except BaseException:
            try:
                os.remove(temp_path)
            except OSError:
                pass
            raise
        return len(events)

    # -- cross-process propagation -------------------------------------------

    def trace_id(self) -> str:
        """A stable id for this trace, shared by every segment of a run.

        Derived from the originating pid and wall-clock epoch (not from
        an RNG — tracing must never perturb seeded streams); adopted
        tracers inherit the parent's id instead of minting one.
        """
        if self._trace_id is None:
            seed = "%d:%.9f" % (os.getpid(), self.epoch_wall)
            self._trace_id = hashlib.sha256(seed.encode("ascii")).hexdigest()[:16]
        return self._trace_id

    def context(self, segment_dir: str) -> TraceContext:
        """The capsule a worker needs to continue this trace."""
        return TraceContext(
            trace_id=self.trace_id(),
            parent_span_id=self.current_span_id(),
            epoch_wall=self.epoch_wall,
            segment_dir=segment_dir,
            profile_prefix=self.profile_prefix,
        )

    def adopt(self, context: TraceContext) -> None:
        """Become a worker-side tracer for ``context``'s trace.

        Fork-started workers inherit the parent's enabled tracer *with
        the parent's buffered spans*; adopting drops that inherited
        state (fresh buffer, ids, epochs, per-thread stacks) so the
        segment this process flushes contains only its own spans.
        """
        with self._lock:
            self._events = []
            self._next_id = 0
        self._local = threading.local()
        self.epoch_perf = time.perf_counter()
        self.epoch_wall = time.time()
        self.enabled = True
        self.profile_prefix = context.profile_prefix
        self.adopted = context
        self.pid = os.getpid()
        self._trace_id = context.trace_id

    def segment_path(self) -> Optional[str]:
        """Where this process's segment file lands (None unless adopted)."""
        if self.adopted is None:
            return None
        return os.path.join(
            self.adopted.segment_dir,
            "%s%d%s" % (SEGMENT_PREFIX, os.getpid(), SEGMENT_SUFFIX),
        )

    def flush_segment(self) -> int:
        """Flush an adopted tracer's buffer to its per-pid segment file.

        Rewrites the whole buffer each call (the pool calls this after
        every task), so the final file always holds the process's
        complete span set.  Returns the events written (0 when this
        tracer never adopted a context).
        """
        path = self.segment_path()
        if path is None:
            return 0
        return self.flush(path)

    def absorb_segments(self, directory: Optional[str], remove: bool = True) -> int:
        """Fold worker segment files under ``directory`` into this buffer.

        For each segment whose meta ``trace_id`` matches this trace
        (foreign leftovers are skipped and left in place): worker span
        ids are remapped to fresh parent-side ids, worker *root* spans
        (``parent_id is None``) are linked to the segment's recorded
        ``parent_span_id``, and ``start`` offsets are shifted by the
        wall-clock delta between the two epochs so the merged waterfall
        is clock-aligned.  Absorbed files are deleted (unless
        ``remove=False``) so a second export cannot double-count.
        Returns the number of spans absorbed.
        """
        if not directory or not os.path.isdir(directory):
            return 0
        absorbed = 0
        for name in sorted(os.listdir(directory)):
            if not (name.startswith(SEGMENT_PREFIX) and name.endswith(SEGMENT_SUFFIX)):
                continue
            path = os.path.join(directory, name)
            meta, events = _read_segment(path)
            if meta is None or meta.get("trace_id") != self.trace_id():
                continue
            offset = float(meta.get("epoch_wall", self.epoch_wall)) - self.epoch_wall
            parent_link = meta.get("parent_span_id")
            remap: Dict[object, int] = {}
            with self._lock:
                for event in events:
                    self._next_id += 1
                    remap[event.get("span_id")] = self._next_id
                for event in events:
                    event["span_id"] = remap[event.get("span_id")]
                    parent = event.get("parent_id")
                    event["parent_id"] = remap[parent] if parent in remap else parent_link
                    event["start"] = float(event.get("start", 0.0)) + offset
                    self._events.append(event)
                absorbed += len(events)
            if remove:
                try:
                    os.remove(path)
                except OSError:
                    pass
        return absorbed

    # -- profiling -----------------------------------------------------------

    def dump_profile(
        self, profile: cProfile.Profile, name: str, span_id: Optional[int]
    ) -> str:
        """Persist one span's profile; returns the dump path."""
        directory = self.profile_dir or envvars.get("REPRO_PROFILE_DIR") or "."
        os.makedirs(directory, exist_ok=True)
        safe = name.replace("/", "_").replace(" ", "_")
        path = os.path.join(directory, "profile-%s-%s.pstats" % (safe, span_id))
        profile.dump_stats(path)
        return path


def _jsonable(value: object) -> object:
    """Coerce an attribute to something json.dumps accepts."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def _read_segment(
    path: str,
) -> Tuple[Optional[Dict[str, object]], List[Dict[str, object]]]:
    """One segment file → (meta record, span events); lenient on damage."""
    meta: Optional[Dict[str, object]] = None
    events: List[Dict[str, object]] = []
    try:
        with open(path) as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if not isinstance(record, dict):
                    continue
                kind = record.get("type", "span")
                if kind == "meta" and meta is None:
                    meta = record
                elif kind == "span":
                    events.append(record)
    except OSError:
        return None, []
    return meta, events


__all__ = [
    "NULL_SPAN",
    "NullSpan",
    "SEGMENT_PREFIX",
    "SEGMENT_SUFFIX",
    "Span",
    "TraceContext",
    "Tracer",
]
