"""Timing spans: structured JSONL trace events with parent links.

A span measures one named region of work::

    with obs.span("simulate.fleet", scenario="quick"):
        ...

On exit the span appends one event to the process-wide buffer:
``name``, ``span_id``, ``parent_id`` (the span open on the same thread
when this one started, or ``None``), ``start`` (seconds since the
tracer's monotonic epoch), ``duration``, ``pid``, and the span's
attributes.  Events are buffered in memory and written by
:meth:`Tracer.flush` as one atomic JSONL file (temp file +
``os.replace``), whose first line is a ``meta`` record mapping the
monotonic epoch back to wall-clock time.

Nesting is tracked per thread with :class:`threading.local`; worker
*processes* have their own (normally disabled) tracer — the parent's
pool spans cover pooled execution instead (see docs/OBSERVABILITY.md).

Profiling rides on spans: with ``REPRO_PROFILE=<prefix>`` every span
whose name starts with the prefix runs under :mod:`cProfile` and dumps
``profile-<name>-<span_id>.pstats`` next to the trace (or into
``$REPRO_PROFILE_DIR``), and the event records the dump path.
"""

from __future__ import annotations

import cProfile
import json
import os
import tempfile
import threading
import time
from typing import Dict, List, Optional

from repro import envvars


class NullSpan:
    """The no-op span returned while tracing is disabled.

    A shared singleton: entering returns itself, exiting does nothing,
    so a disabled ``with obs.span(...):`` costs one attribute check
    plus an (empty) context-manager protocol round trip.
    """

    __slots__ = ()

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None


NULL_SPAN = NullSpan()


class Span:
    """One live span; created by :meth:`Tracer.span`, used as a context
    manager."""

    __slots__ = (
        "tracer",
        "name",
        "attrs",
        "span_id",
        "parent_id",
        "_start",
        "_profile",
    )

    def __init__(self, tracer: "Tracer", name: str, attrs: Dict[str, object]) -> None:
        self.tracer = tracer
        self.name = name
        self.attrs = attrs
        self.span_id: Optional[int] = None
        self.parent_id: Optional[int] = None
        self._start = 0.0
        self._profile: Optional[cProfile.Profile] = None

    def __enter__(self) -> "Span":
        tracer = self.tracer
        self.span_id = tracer.next_id()
        stack = tracer.stack()
        self.parent_id = stack[-1] if stack else None
        stack.append(self.span_id)
        prefix = tracer.profile_prefix
        if prefix is not None and self.name.startswith(prefix):
            self._profile = cProfile.Profile()
            self._profile.enable()
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        duration = time.perf_counter() - self._start
        if self._profile is not None:
            self._profile.disable()
            self.attrs["profile"] = self.tracer.dump_profile(
                self._profile, self.name, self.span_id
            )
        stack = self.tracer.stack()
        if stack and stack[-1] == self.span_id:
            stack.pop()
        event: Dict[str, object] = {
            "type": "span",
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self._start - self.tracer.epoch_perf,
            "duration": duration,
            "pid": os.getpid(),
        }
        if exc_type is not None:
            event["error"] = getattr(exc_type, "__name__", str(exc_type))
        if self.attrs:
            event["attrs"] = {k: _jsonable(v) for k, v in self.attrs.items()}
        self.tracer.record(event)


class Tracer:
    """Process-wide span collector (see module docstring).

    Args:
        enabled: collect spans; ``False`` is the no-op default.
        profile_prefix: span-name prefix that triggers per-span
            cProfile dumps (usually from ``$REPRO_PROFILE``).
        profile_dir: where profile dumps land (``$REPRO_PROFILE_DIR``
            or the working directory).
    """

    def __init__(
        self,
        enabled: bool = False,
        profile_prefix: Optional[str] = None,
        profile_dir: Optional[str] = None,
    ) -> None:
        self.enabled = enabled
        self.profile_prefix = profile_prefix
        self.profile_dir = profile_dir
        self.epoch_perf = time.perf_counter()
        self.epoch_wall = time.time()
        self._lock = threading.Lock()
        self._events: List[Dict[str, object]] = []
        self._next_id = 0
        self._local = threading.local()

    # -- span plumbing -------------------------------------------------------

    def span(self, name: str, attrs: Optional[Dict[str, object]] = None) -> Span:
        """A new span (context manager); no-op object when disabled."""
        return Span(self, name, dict(attrs or {}))

    def next_id(self) -> int:
        with self._lock:
            self._next_id += 1
            return self._next_id

    def stack(self) -> List[int]:
        """This thread's stack of open span ids."""
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def record(self, event: Dict[str, object]) -> None:
        """Append one finished event to the buffer."""
        with self._lock:
            self._events.append(event)

    def current_span_id(self) -> Optional[int]:
        """The innermost open span id on this thread (None at top level)."""
        stack = self.stack()
        return stack[-1] if stack else None

    # -- buffer management ---------------------------------------------------

    def events(self) -> List[Dict[str, object]]:
        """A snapshot copy of the buffered events."""
        with self._lock:
            return list(self._events)

    def clear(self) -> None:
        """Drop all buffered events (tests, or after a flush)."""
        with self._lock:
            self._events = []

    def meta(self) -> Dict[str, object]:
        """The header record written as the first JSONL line."""
        return {
            "type": "meta",
            "epoch_wall": self.epoch_wall,
            "pid": os.getpid(),
            "events": len(self._events),
        }

    def flush(self, path: str) -> int:
        """Write the full buffer to ``path`` as JSONL, atomically.

        Returns the number of span events written.  The write goes to a
        temp file in the destination directory and is published with
        ``os.replace``, so a concurrent reader never sees a torn file.
        """
        events = self.events()
        directory = os.path.dirname(os.path.abspath(path)) or "."
        os.makedirs(directory, exist_ok=True)
        fd, temp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(json.dumps(self.meta()) + "\n")
                for event in events:
                    handle.write(json.dumps(event) + "\n")
            os.replace(temp_path, path)
        except BaseException:
            try:
                os.remove(temp_path)
            except OSError:
                pass
            raise
        return len(events)

    # -- profiling -----------------------------------------------------------

    def dump_profile(
        self, profile: cProfile.Profile, name: str, span_id: Optional[int]
    ) -> str:
        """Persist one span's profile; returns the dump path."""
        directory = self.profile_dir or envvars.get("REPRO_PROFILE_DIR") or "."
        os.makedirs(directory, exist_ok=True)
        safe = name.replace("/", "_").replace(" ", "_")
        path = os.path.join(directory, "profile-%s-%s.pstats" % (safe, span_id))
        profile.dump_stats(path)
        return path


def _jsonable(value: object) -> object:
    """Coerce an attribute to something json.dumps accepts."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


__all__ = ["NULL_SPAN", "NullSpan", "Span", "Tracer"]
