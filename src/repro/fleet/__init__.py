"""Fleet generation: populations of storage systems matching the study.

- :mod:`repro.fleet.calibration` — every constant digitized from the
  paper (AFR targets, model multipliers, shock parameters), in one place.
- :mod:`repro.fleet.catalog` — anonymized disk/shelf model catalog and
  which models appear in which class+shelf combination (Fig. 5).
- :mod:`repro.fleet.spec` — per-class population parameters (Table 1).
- :mod:`repro.fleet.builder` — turns a spec into a concrete
  :class:`~repro.fleet.fleet.Fleet` of systems, shelves, and disks.
"""

from repro.fleet.spec import ClassSpec, FleetSpec
from repro.fleet.fleet import Fleet
from repro.fleet.builder import build_fleet
from repro.fleet import calibration, catalog

__all__ = [
    "ClassSpec",
    "FleetSpec",
    "Fleet",
    "build_fleet",
    "calibration",
    "catalog",
]
