"""Fleet population specifications mirroring the paper's Table 1.

A :class:`FleetSpec` says how many systems of each class to build and how
each class is shaped (shelves per system, bays per shelf, RAID group
size, dual-path share).  The default spec reproduces Table 1's per-class
averages; a ``scale`` factor shrinks system counts so benches run on a
laptop while keeping per-system shapes identical (rates are per-unit-time,
so AFR estimates are scale-invariant up to sampling noise).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Mapping

from repro.errors import SpecificationError
from repro.topology.classes import SYSTEM_CLASS_ORDER, SystemClass
from repro.topology.components import MAX_DISKS_PER_SHELF
from repro.topology.layout import DEFAULT_SPAN_WIDTH, LayoutPolicy
from repro.units import SECONDS_PER_MONTH, STUDY_DURATION_SECONDS


@dataclasses.dataclass(frozen=True)
class ClassSpec:
    """Population shape for one system class.

    Attributes:
        n_systems: systems of this class in the (unscaled) fleet.
        shelves_mean: average shelf enclosures per system; per-system
            counts are drawn around this (min 1).
        slots_per_shelf: populated disk bays per shelf (≤ 14).
        raid_group_size: disks (data+parity) per RAID group.
        dual_path_fraction: share of systems with redundant FC networks
            (only meaningful for classes that support dual path).
        raid4_fraction: share of systems using RAID4 (the rest RAID6).
    """

    n_systems: int
    shelves_mean: float
    slots_per_shelf: int
    raid_group_size: int
    dual_path_fraction: float = 0.0
    raid4_fraction: float = 0.6

    def __post_init__(self) -> None:
        if self.n_systems < 1:
            raise SpecificationError("n_systems must be >= 1")
        if self.shelves_mean < 1.0:
            raise SpecificationError("shelves_mean must be >= 1")
        if not 1 <= self.slots_per_shelf <= MAX_DISKS_PER_SHELF:
            raise SpecificationError(
                "slots_per_shelf must be in [1, %d]" % MAX_DISKS_PER_SHELF
            )
        if self.raid_group_size < 3:
            raise SpecificationError("raid_group_size must be >= 3")
        if not 0.0 <= self.dual_path_fraction <= 1.0:
            raise SpecificationError("dual_path_fraction must be in [0, 1]")
        if not 0.0 <= self.raid4_fraction <= 1.0:
            raise SpecificationError("raid4_fraction must be in [0, 1]")


#: Table 1, reduced to per-class shape parameters:
#: near-line averages ~7 shelves and ~98 disks per system (fully
#: populated 14-bay shelves); low-end systems have embedded heads with
#: ~1.7 shelves and partially populated bays; mid-range averages ~7
#: shelves / ~80 disks; high-end is similar scale with fuller shelves.
#: RAID group sizes follow Table 1's disks-per-group ratios; about a
#: third of mid/high systems run dual-path (§4.3).
PAPER_CLASS_SPECS: Mapping[SystemClass, ClassSpec] = {
    SystemClass.NEARLINE: ClassSpec(
        n_systems=4_927, shelves_mean=6.8, slots_per_shelf=14, raid_group_size=8
    ),
    SystemClass.LOW_END: ClassSpec(
        n_systems=22_031, shelves_mean=1.7, slots_per_shelf=7, raid_group_size=6
    ),
    SystemClass.MID_RANGE: ClassSpec(
        n_systems=7_154,
        shelves_mean=7.4,
        slots_per_shelf=11,
        raid_group_size=7,
        dual_path_fraction=1.0 / 3.0,
    ),
    SystemClass.HIGH_END: ClassSpec(
        n_systems=5_003,
        shelves_mean=6.7,
        slots_per_shelf=13,
        raid_group_size=9,
        dual_path_fraction=1.0 / 3.0,
    ),
}


@dataclasses.dataclass(frozen=True)
class FleetSpec:
    """A complete fleet specification.

    Attributes:
        class_specs: per-class population shapes.
        scale: multiplier on ``n_systems`` (1.0 = the paper's 39,000
            systems; benches default to 0.01).
        duration_seconds: observation window length (44 months).
        deployment_spread_seconds: systems deploy uniformly over this
            leading portion of the window, so every system is in the
            field at least ``duration - spread`` (≥ 1 year by default,
            matching §5.2.2's inclusion rule).
        layout_policy: RAID group placement policy.
        span_width: shelves per spanning band (Fig. 8; fleet average 3).
    """

    class_specs: Mapping[SystemClass, ClassSpec]
    scale: float = 1.0
    duration_seconds: float = STUDY_DURATION_SECONDS
    deployment_spread_seconds: float = 32 * SECONDS_PER_MONTH
    layout_policy: LayoutPolicy = LayoutPolicy.SPAN_SHELVES
    span_width: int = DEFAULT_SPAN_WIDTH

    def __post_init__(self) -> None:
        if not self.class_specs:
            raise SpecificationError("class_specs must not be empty")
        if self.scale <= 0.0:
            raise SpecificationError("scale must be positive")
        if self.duration_seconds <= 0.0:
            raise SpecificationError("duration must be positive")
        if not 0.0 <= self.deployment_spread_seconds < self.duration_seconds:
            raise SpecificationError(
                "deployment spread must lie inside the observation window"
            )

    @classmethod
    def paper_default(cls, scale: float = 0.01, **overrides) -> "FleetSpec":
        """The Table 1 fleet at a given scale (default 1:100)."""
        return cls(class_specs=dict(PAPER_CLASS_SPECS), scale=scale, **overrides)

    @classmethod
    def single_class(
        cls, system_class: SystemClass, n_systems: int, **overrides
    ) -> "FleetSpec":
        """A one-class fleet, handy for focused experiments and tests."""
        base = PAPER_CLASS_SPECS[system_class]
        spec = dataclasses.replace(base, n_systems=n_systems)
        return cls(class_specs={system_class: spec}, **overrides)

    def scaled_systems(self, system_class: SystemClass) -> int:
        """Scaled system count for a class (at least 1)."""
        spec = self.class_specs[system_class]
        return max(1, round(spec.n_systems * self.scale))

    def expected_totals(self) -> Dict[str, float]:
        """Back-of-envelope totals for the scaled fleet (for reports)."""
        systems = 0
        shelves = 0.0
        disks = 0.0
        for system_class in SYSTEM_CLASS_ORDER:
            if system_class not in self.class_specs:
                continue
            spec = self.class_specs[system_class]
            n = self.scaled_systems(system_class)
            systems += n
            shelves += n * spec.shelves_mean
            disks += n * spec.shelves_mean * spec.slots_per_shelf
        return {"systems": systems, "shelves": shelves, "disks": disks}
