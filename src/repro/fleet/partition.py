"""Cell partitioning: the unit of fleet sharding.

A **cell** is a fixed, content-addressed bucket of systems: every
system hashes (stable 64-bit FNV-1a over its ``system_id``) into one of
:data:`NUM_CELLS` cells, independent of fleet scale, enumeration order,
or how many shards a run asked for.  Shards are unions of whole cells —
``shard_of_cell`` maps cells onto ``n_shards`` contiguous ranges — so
the systems grouped together never depend on the shard count.

That invariance is what makes sharded runs *byte-identical* to
unsharded ones:

* the legacy injector draws one stream per system, so any partition of
  systems reproduces the same events;
* the vector engine draws one stream per (cohort, cell) — see
  :func:`repro.simulate.vector.cohorts.group_cohorts` — so as long as
  every (cohort, cell) group lives entirely inside one shard, its
  batched draws are the same arrays the unsharded run produces.

``NUM_CELLS`` is a model constant, not a knob: changing it changes
which systems share a vector batch and therefore every draw.
"""

from __future__ import annotations

#: Fixed number of hash cells systems partition into.  Effective shard
#: parallelism caps here; a run with more shards gets empty shards.
NUM_CELLS = 32


def fnv1a64(text: str) -> int:
    """Stable (non-``PYTHONHASHSEED``) 64-bit FNV-1a hash of ``text``.

    The same byte-for-byte recurrence :mod:`repro.rng` uses for stream
    key derivation, exposed for partitioning.
    """
    acc = 0xCBF29CE484222325
    for byte in text.encode("utf-8"):
        acc ^= byte
        acc = (acc * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return acc


def cell_of(system_id: str) -> int:
    """The cell a system belongs to (content-addressed, scale-invariant)."""
    return fnv1a64(system_id) % NUM_CELLS


def shard_of_cell(cell: int, n_shards: int) -> int:
    """The shard a cell lands in when the run uses ``n_shards`` shards.

    Cells map onto contiguous shard ranges; with more shards than
    cells, the surplus shards are simply empty.
    """
    if n_shards < 1:
        raise ValueError("n_shards must be >= 1, got %d" % n_shards)
    return min(cell * n_shards // NUM_CELLS, n_shards - 1)


def cells_of_shard(shard_index: int, n_shards: int) -> tuple:
    """All cells assigned to one shard (ascending)."""
    return tuple(
        cell
        for cell in range(NUM_CELLS)
        if shard_of_cell(cell, n_shards) == shard_index
    )


__all__ = ["NUM_CELLS", "cell_of", "cells_of_shard", "fnv1a64", "shard_of_cell"]
