"""System vistas: compact per-system records for merged sharded runs.

A sharded run simulates each sub-fleet in a worker and must hand the
parent everything the analyses need *without* shipping (or keeping) the
object graph — at paper scale the fleet holds over a million ``Disk``
objects, and not materializing all of them at once in one process is
the whole point of sharding.

A :class:`SystemVista` is the duck-typed stand-in: it carries the
configuration attributes the grouping analyses read (class, models,
path flag, deploy time), the shelf / RAID-group id lists that
``scope_population`` walks, the Table 1 counts, and the system's disk
exposure **precomputed on the live sub-fleet** (so replacement disk
lifetimes are already accounted, byte-identically to the unsharded
sum).  An ordinary :class:`~repro.fleet.fleet.Fleet` can hold vistas
because it only requires ``.system_id`` plus the attributes it sums.

What vistas deliberately do *not* support: per-disk walks
(``iter_disks`` / ``iter_slots``) and exposure at arbitrary window
ends.  Analyses that need the full object graph (disk ages, rebuild
windows, per-slot prediction) raise :class:`~repro.errors.AnalysisError`
with a pointer at unsharded runs instead of silently degrading.
"""

from __future__ import annotations

import dataclasses
from typing import List, Tuple

from repro.errors import AnalysisError
from repro.topology.classes import SYSTEM_CLASS_ORDER, SystemClass

_UNSUPPORTED = (
    "%s is not available on a sharded (vista) fleet: shards keep only "
    "per-system summaries, not the disk object graph; re-run without "
    "--shards for analyses that walk individual disks"
)


@dataclasses.dataclass(frozen=True)
class ShelfVista:
    """One shelf enclosure, reduced to its identity."""

    shelf_id: str


@dataclasses.dataclass(frozen=True)
class GroupVista:
    """One RAID group, reduced to its identity."""

    raid_group_id: str


@dataclasses.dataclass
class SystemVista:
    """Compact per-system record (see module docstring).

    Attributes mirror :class:`~repro.topology.system.StorageSystem`
    where analyses read them; ``exposure_seconds`` is the system's
    disk-seconds of exposure evaluated at ``window_end`` on the live
    sub-fleet, replacement lifetimes included.
    """

    system_id: str
    system_class: SystemClass
    shelf_model: str
    primary_disk_model: str
    dual_path: bool
    deploy_time: float
    shelves: List[ShelfVista]
    raid_groups: List[GroupVista]
    disk_count_ever: int
    slot_count: int
    exposure_seconds: float
    window_end: float

    @classmethod
    def from_system(cls, system, window_end: float) -> "SystemVista":
        """Distill a live (failure-mutated) system into a vista."""
        return cls(
            system_id=system.system_id,
            system_class=system.system_class,
            shelf_model=system.shelf_model,
            primary_disk_model=system.primary_disk_model,
            dual_path=system.dual_path,
            deploy_time=system.deploy_time,
            shelves=[ShelfVista(shelf.shelf_id) for shelf in system.shelves],
            raid_groups=[
                GroupVista(group.raid_group_id) for group in system.raid_groups
            ],
            disk_count_ever=system.disk_count_ever,
            slot_count=system.slot_count,
            exposure_seconds=system.disk_exposure_seconds(window_end),
            window_end=float(window_end),
        )

    # -- StorageSystem-compatible surface ---------------------------------

    def disk_exposure_seconds(self, window_end: float) -> float:
        """The precomputed exposure (only valid at the recorded end)."""
        if window_end != self.window_end:
            raise AnalysisError(
                "vista exposure for %s was precomputed at window end %r, "
                "not %r; %s"
                % (
                    self.system_id,
                    self.window_end,
                    window_end,
                    _UNSUPPORTED % "arbitrary-window exposure",
                )
            )
        return self.exposure_seconds

    def age_at(self, time: float) -> float:
        """Seconds in the field at ``time`` (0 if not yet deployed)."""
        return max(0.0, time - self.deploy_time)

    def iter_disks(self):
        raise AnalysisError(_UNSUPPORTED % "iter_disks")

    def iter_slots(self):
        raise AnalysisError(_UNSUPPORTED % "iter_slots")


def fleet_order_key(vista: SystemVista) -> Tuple[int, int]:
    """Sort key restoring builder order: (class order, global index).

    Merged vistas must be summed in the exact order the unsharded fleet
    enumerates systems, or float exposure totals drift by rounding.
    System ids encode that order (``<tag>-<index>``).
    """
    return (
        SYSTEM_CLASS_ORDER.index(vista.system_class),
        int(vista.system_id.rsplit("-", 1)[1]),
    )


__all__ = ["GroupVista", "ShelfVista", "SystemVista", "fleet_order_key"]
