"""The :class:`Fleet` container: all systems plus fast lookups."""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterator, List, Optional

from repro.errors import TopologyError
from repro.topology.classes import SystemClass
from repro.topology.components import Disk, Shelf
from repro.topology.raidgroup import RAIDGroup
from repro.topology.system import StorageSystem


@dataclasses.dataclass
class Fleet:
    """A population of storage systems under study.

    Attributes:
        systems: all systems, in construction order.
        duration_seconds: the observation window the fleet was built for.
    """

    systems: List[StorageSystem]
    duration_seconds: float

    def __post_init__(self) -> None:
        self._system_by_id: Dict[str, StorageSystem] = {
            system.system_id: system for system in self.systems
        }
        if len(self._system_by_id) != len(self.systems):
            raise TopologyError("duplicate system ids in fleet")

    # -- lookups ----------------------------------------------------------

    def system(self, system_id: str) -> StorageSystem:
        """Find a system by id."""
        try:
            return self._system_by_id[system_id]
        except KeyError:
            raise TopologyError("no system %r in fleet" % system_id) from None

    def systems_of_class(self, system_class: SystemClass) -> List[StorageSystem]:
        """All systems of one class."""
        return [s for s in self.systems if s.system_class is system_class]

    # -- iteration ---------------------------------------------------------

    def iter_shelves(self) -> Iterator[Shelf]:
        """All shelf enclosures in the fleet."""
        for system in self.systems:
            yield from system.shelves

    def iter_raid_groups(self) -> Iterator[RAIDGroup]:
        """All RAID groups in the fleet."""
        for system in self.systems:
            yield from system.raid_groups

    def iter_disks(self) -> Iterator[Disk]:
        """All disks ever installed in the fleet."""
        for system in self.systems:
            yield from system.iter_disks()

    # -- totals -------------------------------------------------------------

    @property
    def system_count(self) -> int:
        """Number of systems."""
        return len(self.systems)

    @property
    def shelf_count(self) -> int:
        """Number of shelf enclosures."""
        return sum(len(s.shelves) for s in self.systems)

    @property
    def raid_group_count(self) -> int:
        """Number of RAID groups."""
        return sum(len(s.raid_groups) for s in self.systems)

    @property
    def disk_count_ever(self) -> int:
        """Disks ever installed during the window (Table 1 convention)."""
        return sum(s.disk_count_ever for s in self.systems)

    def disk_exposure_seconds(self, window_end: Optional[float] = None) -> float:
        """Total disk-seconds of exposure up to ``window_end`` (disk-time)."""
        end = self.duration_seconds if window_end is None else window_end
        return sum(s.disk_exposure_seconds(end) for s in self.systems)
