"""Build a concrete :class:`~repro.fleet.fleet.Fleet` from a spec.

Construction is deterministic given a :class:`~repro.rng.RandomSource`:
each system draws its shelf model, primary disk model, path
configuration, deployment date, shelf count, and RAID type from keyed
random streams, then populates bays with the initial disk complement
(replacement disks are added later by the failure injector).
"""

from __future__ import annotations

from typing import List, Mapping, Optional, Sequence

import numpy as np

from repro import obs
from repro.fleet import catalog
from repro.fleet.fleet import Fleet
from repro.fleet.spec import ClassSpec, FleetSpec
from repro.rng import RandomSource
from repro.topology.classes import SYSTEM_CLASS_ORDER, SystemClass
from repro.topology.components import Disk, Shelf
from repro.topology.layout import assign_raid_groups
from repro.topology.raidgroup import RaidType
from repro.topology.system import StorageSystem


def system_id_for(system_class: SystemClass, index: int) -> str:
    """The deterministic id of the ``index``-th system of a class.

    Ids are a pure function of (class, global index), which is what lets
    a sharded run name — and therefore partition — the systems of a
    fleet spec without building them.
    """
    return "%s-%05d" % (_CLASS_TAGS[system_class], index)


def build_fleet(
    spec: FleetSpec,
    random_source: RandomSource,
    selection: Optional[Mapping[SystemClass, Sequence[int]]] = None,
) -> Fleet:
    """Materialize the fleet a spec describes.

    Args:
        spec: population shapes per class, scale, and layout policy.
        random_source: root of the deterministic random streams.
        selection: optional subset to build — per class, the *global*
            system indices to include (``None`` builds everything).
            Because each system draws from a stream keyed by its global
            index, a selected system is byte-identical to the same
            system in the full build; this is how shards reproduce
            exactly their slice of the unsharded fleet.

    Returns:
        A fleet whose bays hold their initial disks (``install_time`` set
        to each system's deployment time) and whose RAID groups are laid
        out per the spec's policy.
    """
    systems: List[StorageSystem] = []
    with obs.span("fleet.build", scale=spec.scale):
        for system_class in SYSTEM_CLASS_ORDER:
            if system_class not in spec.class_specs:
                continue
            class_spec = spec.class_specs[system_class]
            count = spec.scaled_systems(system_class)
            if selection is None:
                indices: Sequence[int] = range(count)
            else:
                indices = sorted(selection.get(system_class, ()))
                if indices and not (0 <= indices[0] <= indices[-1] < count):
                    raise ValueError(
                        "selection indices for %s out of range [0, %d)"
                        % (system_class.value, count)
                    )
            for index in indices:
                system_id = system_id_for(system_class, index)
                rng = random_source.stream("fleet", system_class.value, index)
                systems.append(
                    _build_system(system_id, system_class, class_spec, spec, rng)
                )
            obs.inc(
                "fleet.systems", len(indices), system_class=system_class.value
            )
    fleet = Fleet(systems=systems, duration_seconds=spec.duration_seconds)
    obs.set_gauge("fleet.disks", sum(s.slot_count for s in systems))
    return fleet


_CLASS_TAGS = {
    SystemClass.NEARLINE: "nl",
    SystemClass.LOW_END: "le",
    SystemClass.MID_RANGE: "mr",
    SystemClass.HIGH_END: "he",
}


def _choose_weighted(rng: np.random.Generator, pairs) -> str:
    """Pick a name from ``[(name, weight), ...]`` (weights sum to ~1)."""
    names = [name for name, _ in pairs]
    weights = np.array([weight for _, weight in pairs], dtype=float)
    weights = weights / weights.sum()
    return str(rng.choice(names, p=weights))


def _build_system(
    system_id: str,
    system_class: SystemClass,
    class_spec: ClassSpec,
    spec: FleetSpec,
    rng: np.random.Generator,
) -> StorageSystem:
    """Construct one system: shelves, initial disks, RAID groups."""
    shelf_mix = catalog.shelf_models_for_class(system_class)
    shelf_model = _choose_weighted(rng, list(shelf_mix.items()))
    disk_model = _choose_weighted(
        rng, catalog.disk_models_for(system_class, shelf_model)
    )
    dual_path = (
        system_class.supports_dual_path
        and rng.random() < class_spec.dual_path_fraction
    )
    deploy_time = float(rng.uniform(0.0, spec.deployment_spread_seconds))
    raid_type = (
        RaidType.RAID4 if rng.random() < class_spec.raid4_fraction else RaidType.RAID6
    )

    # Shelf count: Poisson around the mean, at least one shelf.
    n_shelves = max(1, int(rng.poisson(class_spec.shelves_mean)))

    system = StorageSystem(
        system_id=system_id,
        system_class=system_class,
        shelf_model=shelf_model,
        primary_disk_model=disk_model,
        dual_path=dual_path,
        deploy_time=deploy_time,
    )
    for shelf_index in range(n_shelves):
        shelf = Shelf(
            shelf_id="sh-%s-%02d" % (system_id, shelf_index),
            model=shelf_model,
            system_id=system_id,
        )
        shelf.add_slots(class_spec.slots_per_shelf)
        system.shelves.append(shelf)

    system.raid_groups = assign_raid_groups(
        system_id=system_id,
        shelves=system.shelves,
        group_size=class_spec.raid_group_size,
        raid_type=raid_type,
        policy=spec.layout_policy,
        span_width=spec.span_width,
    )

    # Populate every bay with its initial disk.
    serial_stream = rng.integers(0, 2**32, size=system.slot_count)
    for serial, slot in zip(serial_stream, system.iter_slots()):
        disk = Disk(
            disk_id="%s#0" % slot.slot_key,
            model=disk_model,
            system_id=system_id,
            shelf_id=slot.shelf_id,
            slot_index=slot.slot_index,
            raid_group_id=slot.raid_group_id,
            install_time=deploy_time,
            serial="S%08X" % int(serial),
        )
        slot.install(disk)
    return system
