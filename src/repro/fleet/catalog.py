"""The anonymized hardware catalog: which models exist and where they ship.

Reproduces the combinations visible in the paper's Fig. 5: six
class x shelf-enclosure panels, each listing the disk models deployed in
that combination (20 disk models across 11 families; 3 shelf models; FC
disks in primary classes, SATA in near-line).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence, Tuple

from repro.errors import CalibrationError
from repro.topology.classes import SystemClass
from repro.topology.models import DiskModel, ShelfModel

#: Capacity laddering: rank 1 is the smallest shipping capacity of a
#: family; each rank doubles it.  Near-line SATA families start larger.
_FC_BASE_GB = 72
_SATA_BASE_GB = 250


def _fc(name: str) -> DiskModel:
    family, rank = name.split("-")
    return DiskModel(
        family=family,
        capacity_rank=int(rank),
        interface="FC",
        capacity_gb=_FC_BASE_GB * (2 ** (int(rank) - 1)),
    )


def _sata(name: str) -> DiskModel:
    family, rank = name.split("-")
    return DiskModel(
        family=family,
        capacity_rank=int(rank),
        interface="SATA",
        capacity_gb=_SATA_BASE_GB * (2 ** (int(rank) - 1)),
    )


#: Every disk model in the study, keyed by canonical name.
DISK_MODELS: Mapping[str, DiskModel] = {
    model.name: model
    for model in (
        # FC families used by primary storage (Fig. 5 b-f).
        _fc("A-1"), _fc("A-2"), _fc("A-3"),
        _fc("B-1"),
        _fc("C-1"), _fc("C-2"),
        _fc("D-1"), _fc("D-2"), _fc("D-3"),
        _fc("E-1"),
        _fc("F-1"), _fc("F-2"),
        _fc("G-1"),
        _fc("H-1"), _fc("H-2"),
        # SATA families used by near-line systems (Fig. 5 a).
        _sata("I-1"), _sata("I-2"),
        _sata("J-1"), _sata("J-2"),
        _sata("K-1"),
    )
}

#: Every shelf enclosure model in the study.
SHELF_MODELS: Mapping[str, ShelfModel] = {
    name: ShelfModel(name) for name in ("A", "B", "C")
}

#: Fig. 5's six panels: which disk models ship in each
#: (system class, shelf model) combination.
COMBINATIONS: Mapping[Tuple[SystemClass, str], Sequence[str]] = {
    (SystemClass.NEARLINE, "C"): ("I-1", "J-1", "J-2", "K-1", "I-2"),
    (SystemClass.LOW_END, "A"): ("A-2", "A-3", "D-2", "D-3", "H-2"),
    (SystemClass.LOW_END, "B"): ("A-2", "A-3", "D-2", "D-3", "H-2"),
    (SystemClass.MID_RANGE, "C"): ("B-1", "C-1", "G-1", "H-1"),
    (SystemClass.MID_RANGE, "B"): (
        "A-1", "A-2", "C-1", "C-2", "D-1", "D-2", "D-3", "E-1", "H-1", "H-2",
    ),
    (SystemClass.HIGH_END, "B"): (
        "A-2", "A-3", "C-2", "D-2", "D-3", "E-1", "F-1", "F-2", "H-1", "H-2",
    ),
}

#: Which shelf models each class deploys, with mixing weights.
SHELF_MIX: Mapping[SystemClass, Mapping[str, float]] = {
    SystemClass.NEARLINE: {"C": 1.0},
    SystemClass.LOW_END: {"A": 0.5, "B": 0.5},
    SystemClass.MID_RANGE: {"C": 0.3, "B": 0.7},
    SystemClass.HIGH_END: {"B": 1.0},
}

#: Relative shipping weight of the problematic H family within a panel;
#: the remaining weight is spread evenly over the other models.
_H_FAMILY_WEIGHT = 0.12


def disk_model(name: str) -> DiskModel:
    """Look up a disk model by canonical name.

    Raises:
        CalibrationError: for names not in the study's catalog.
    """
    try:
        return DISK_MODELS[name]
    except KeyError:
        raise CalibrationError("unknown disk model %r" % name) from None


def shelf_models_for_class(system_class: SystemClass) -> Mapping[str, float]:
    """Shelf model mixing weights for a class (sums to 1)."""
    try:
        return SHELF_MIX[system_class]
    except KeyError:
        raise CalibrationError(
            "no shelf mix for class %r" % system_class
        ) from None


def disk_models_for(
    system_class: SystemClass, shelf_model: str
) -> List[Tuple[str, float]]:
    """Disk models and shipping weights for a class+shelf combination.

    Returns:
        ``[(model_name, weight), ...]`` with weights summing to 1; the
        H-family models get :data:`_H_FAMILY_WEIGHT` of the total each.

    Raises:
        CalibrationError: for a combination that does not ship (Fig. 5
            shows only six class x shelf panels).
    """
    try:
        names = COMBINATIONS[(system_class, shelf_model)]
    except KeyError:
        raise CalibrationError(
            "no %s systems ship with shelf model %s"
            % (system_class.value, shelf_model)
        ) from None
    h_models = [n for n in names if n.startswith("H-")]
    others = [n for n in names if not n.startswith("H-")]
    weights: Dict[str, float] = {}
    for name in h_models:
        weights[name] = _H_FAMILY_WEIGHT
    remaining = 1.0 - _H_FAMILY_WEIGHT * len(h_models)
    for name in others:
        weights[name] = remaining / len(others)
    return [(name, weights[name]) for name in names]


def validate() -> None:
    """Check catalog consistency: weights sum to 1, models all known."""
    for system_class, mix in SHELF_MIX.items():
        if abs(sum(mix.values()) - 1.0) > 1e-9:
            raise CalibrationError(
                "shelf mix for %s sums to %.4f" % (system_class.value, sum(mix.values()))
            )
        for shelf_name in mix:
            if shelf_name not in SHELF_MODELS:
                raise CalibrationError("unknown shelf model %r" % shelf_name)
            for name, weight in disk_models_for(system_class, shelf_name):
                if name not in DISK_MODELS:
                    raise CalibrationError("unknown disk model %r" % name)
                if weight <= 0.0:
                    raise CalibrationError("non-positive weight for %r" % name)
    for (system_class, shelf_name), names in COMBINATIONS.items():
        expected = "SATA" if system_class is SystemClass.NEARLINE else "FC"
        for name in names:
            if DISK_MODELS[name].interface != expected:
                raise CalibrationError(
                    "%s systems use %s disks but %s is %s"
                    % (system_class.value, expected, name, DISK_MODELS[name].interface)
                )
