"""Paper-calibrated constants for the synthetic fleet.

The study's raw data (NetApp AutoSupport logs) is proprietary, so the
simulator is calibrated to the numbers the paper *prints*: per-class AFR
breakdowns (Fig. 4b, Fig. 7), the Disk H anomaly (Finding 3), shelf/disk
interoperability shifts (Fig. 6), multipath masking effectiveness
(Finding 7), and the burstiness/correlation behaviour of §5.  Everything
that encodes "what the paper measured" lives in this module with a
citation comment; no other module hard-codes a rate.

Rates are quoted as AFR percent per disk-year and converted to per-second
hazards at the point of use via :mod:`repro.units`.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Mapping, Tuple

from repro.errors import CalibrationError
from repro.failures.types import FailureType, InterconnectCause
from repro.topology.classes import SystemClass


@dataclasses.dataclass(frozen=True)
class ClassRates:
    """Per-class delivered AFR targets, percent per disk-year.

    ``interconnect`` is the *single-path* physical interconnect rate;
    dual-path systems see it reduced by the multipath masking model.
    Values digitized from Fig. 4(b) (classes without a dual-path split)
    and Fig. 7 (single-path bars for mid-range/high-end).
    """

    disk: float
    interconnect: float
    protocol: float
    performance: float

    def rate(self, failure_type: FailureType) -> float:
        """The AFR-percent target for one failure type."""
        return {
            FailureType.DISK: self.disk,
            FailureType.PHYSICAL_INTERCONNECT: self.interconnect,
            FailureType.PROTOCOL: self.protocol,
            FailureType.PERFORMANCE: self.performance,
        }[failure_type]

    @property
    def total(self) -> float:
        """Total storage subsystem AFR percent."""
        return self.disk + self.interconnect + self.protocol + self.performance


#: Fig. 4(b) stacks (excluding Disk H systems) with mid/high interconnect
#: taken from the single-path bars of Fig. 7: near-line subsystem AFR is
#: about 3.4% with disks at 1.9% (SATA); low-end is about 4.6% with disks
#: at only 0.9% (FC), i.e. disks are ~20% of the total (Findings 1-2).
CLASS_RATES: Mapping[SystemClass, ClassRates] = {
    SystemClass.NEARLINE: ClassRates(
        disk=1.90, interconnect=0.95, protocol=0.35, performance=0.20
    ),
    SystemClass.LOW_END: ClassRates(
        disk=0.90, interconnect=2.90, protocol=0.35, performance=0.45
    ),
    SystemClass.MID_RANGE: ClassRates(
        disk=0.75, interconnect=1.82, protocol=0.32, performance=0.28
    ),
    SystemClass.HIGH_END: ClassRates(
        disk=0.75, interconnect=2.13, protocol=0.30, performance=0.03
    ),
}


@dataclasses.dataclass(frozen=True)
class DiskModelEffect:
    """Multipliers a disk model applies to the class-base rates.

    Finding 3: the problematic Disk H family roughly doubles subsystem
    AFR, and inflates not just disk failures but protocol and performance
    failures too (corner-case protocol bugs and slow service are
    triggered by ailing disks).  Finding 5: capacity rank carries no
    systematic trend, so multipliers are per-model, not per-capacity.
    """

    disk: float = 1.0
    protocol: float = 1.0
    performance: float = 1.0


#: Per-model multipliers.  H-family values reproduce Finding 3; D-2 below
#: D-1 reproduces the Fig. 5(e) observation behind Finding 5 (larger disk,
#: lower AFR); the rest are mild model-to-model variation (Fig. 5 shows
#: disk AFR varying with ~11% average standard deviation across models).
DISK_MODEL_EFFECTS: Mapping[str, DiskModelEffect] = {
    # FC families (primary storage)
    "A-1": DiskModelEffect(disk=1.15),
    "A-2": DiskModelEffect(disk=1.00),
    "A-3": DiskModelEffect(disk=0.95),
    "B-1": DiskModelEffect(disk=1.05),
    "C-1": DiskModelEffect(disk=1.10),
    "C-2": DiskModelEffect(disk=0.90),
    "D-1": DiskModelEffect(disk=1.25),
    "D-2": DiskModelEffect(disk=0.85),
    "D-3": DiskModelEffect(disk=0.95),
    "E-1": DiskModelEffect(disk=1.00),
    "F-1": DiskModelEffect(disk=0.90),
    "F-2": DiskModelEffect(disk=1.00),
    "G-1": DiskModelEffect(disk=1.05),
    # The problematic family (Finding 3): Fig. 5 shows its systems at
    # 3.9-8.3% subsystem AFR, about double their peers, with protocol
    # and performance failures inflated alongside disk failures.
    "H-1": DiskModelEffect(disk=3.00, protocol=2.50, performance=2.50),
    "H-2": DiskModelEffect(disk=2.80, protocol=2.30, performance=2.30),
    # SATA families (near-line)
    "I-1": DiskModelEffect(disk=1.00),
    "I-2": DiskModelEffect(disk=0.95),
    "J-1": DiskModelEffect(disk=1.10),
    "J-2": DiskModelEffect(disk=1.00),
    "K-1": DiskModelEffect(disk=0.90),
}

#: The problematic disk family excluded in Fig. 4(b) / included in 4(a).
PROBLEMATIC_DISK_FAMILY = "H"


#: Fig. 6 / Finding 6: shelf enclosure model shifts the physical
#: interconnect rate, and which shelf is better depends on the disk
#: model (interoperability).  Keys are (shelf model, disk model name);
#: anything absent multiplies by 1.0.  Values chosen so Shelf B beats A
#: for Disk A-2 while A beats B for A-3/D-2/D-3, at roughly the relative
#: separation of Fig. 6 (e.g. 2.66% vs 2.18% for A-2).
SHELF_DISK_INTEROP: Mapping[Tuple[str, str], float] = {
    ("A", "A-2"): 1.25,
    ("B", "A-2"): 0.78,
    ("A", "A-3"): 0.80,
    ("B", "A-3"): 1.25,
    ("A", "D-2"): 0.78,
    ("B", "D-2"): 1.25,
    ("A", "D-3"): 0.75,
    ("B", "D-3"): 1.28,
}


@dataclasses.dataclass(frozen=True)
class ShockParams:
    """Shared-shock process parameters for one failure type (§5.2.3).

    A fraction ``rho`` of the type's delivered per-disk rate arrives via
    shelf-scoped shocks (environment/temperature excursions, transient
    interconnect component faults, driver updates); each shock affects
    each disk in its shelf independently with probability ``hit_prob``,
    and affected disks fail at shock time plus an exponential delay with
    mean ``window_mean_seconds``.  Tight windows and high hit
    probabilities produce the bursty patterns of Fig. 9 and the
    super-independent P(2) of Fig. 10.
    """

    rho: float
    hit_prob: float
    window_mean_seconds: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.rho < 1.0:
            raise CalibrationError("rho must be in [0, 1)")
        if not 0.0 < self.hit_prob <= 1.0:
            raise CalibrationError("hit_prob must be in (0, 1]")
        if self.window_mean_seconds <= 0.0:
            raise CalibrationError("window mean must be positive")


#: Disk failures are the least bursty (gamma-renewal-looking aggregate,
#: Finding 8) yet still correlated ~6x beyond independence (Finding 11):
#: infrequent wide-window environment shocks.  Interconnect failures are
#: the most bursty: one cable/HBA/backplane fault takes out many disks of
#: a shelf within minutes.  Protocol and performance sit in between
#: (10-25x P(2) inflation).
SHOCK_PARAMS: Mapping[FailureType, ShockParams] = {
    FailureType.DISK: ShockParams(rho=0.45, hit_prob=0.22, window_mean_seconds=2.0e5),
    FailureType.PHYSICAL_INTERCONNECT: ShockParams(
        rho=0.80, hit_prob=0.22, window_mean_seconds=4000.0
    ),
    FailureType.PROTOCOL: ShockParams(rho=0.70, hit_prob=0.22, window_mean_seconds=6000.0),
    FailureType.PERFORMANCE: ShockParams(rho=0.50, hit_prob=0.18, window_mean_seconds=8000.0),
}


#: Shape of the gamma renewal process generating the non-shock share of
#: disk failures within a shelf.  Finding 8: disk failure inter-arrivals
#: are best fit by a gamma distribution (shape < 1 = mild clustering
#: from the shared thermal environment), unlike the much burstier
#: shock-driven types.
DISK_RENEWAL_GAMMA_SHAPE = 0.65

#: Sub-cause mix of physical interconnect failures (§4.3 discussion):
#: network-path faults dominate but backplane/power faults and shared
#: physical HBAs are why dual-path AFR stays far above the idealized
#: product of two independent network failure probabilities.
INTERCONNECT_CAUSE_MIX: Mapping[InterconnectCause, float] = {
    InterconnectCause.NETWORK_PATH: 0.60,
    InterconnectCause.BACKPLANE: 0.32,
    InterconnectCause.SHARED_HBA: 0.08,
}

#: Probability that a dual-path system masks a network-path fault by
#: failing over.  0.60 x 0.90 = 54% interconnect reduction, the middle of
#: the paper's 50-60% (Finding 7); subsystem AFR drops 30-40%.
MULTIPATH_MASK_PROBABILITY = 0.90

#: Mean recovered (non-propagating) component errors emitted per
#: subsystem failure — retries and failovers that the log shows but the
#: RAID layer never sees (§2.5: "not all failures propagate").
RECOVERED_ERRORS_PER_FAILURE = 2.0

#: Mean delay (seconds) from disk-failure detection to the replacement
#: disk entering service.
DISK_REPLACEMENT_DELAY_MEAN = 86_400.0


def class_rates(system_class: SystemClass) -> ClassRates:
    """Look up the delivered AFR targets for a system class."""
    try:
        return CLASS_RATES[system_class]
    except KeyError:
        raise CalibrationError(
            "no calibration for system class %r" % system_class
        ) from None


def disk_model_effect(model_name: str) -> DiskModelEffect:
    """Look up a disk model's rate multipliers (identity if unknown)."""
    return DISK_MODEL_EFFECTS.get(model_name, DiskModelEffect())


def interop_multiplier(shelf_model: str, disk_model: str) -> float:
    """Interconnect-rate multiplier for a shelf+disk pairing (Finding 6)."""
    return SHELF_DISK_INTEROP.get((shelf_model, disk_model), 1.0)


def delivered_afr_percent(
    system_class: SystemClass,
    failure_type: FailureType,
    disk_model: str,
    shelf_model: str,
) -> float:
    """The calibrated AFR-percent target for one configuration.

    This is the single-path, post-propagation rate; multipath masking is
    applied downstream by the injector for dual-path systems.
    """
    base = class_rates(system_class).rate(failure_type)
    effect = disk_model_effect(disk_model)
    if failure_type is FailureType.DISK:
        return base * effect.disk
    if failure_type is FailureType.PROTOCOL:
        return base * effect.protocol
    if failure_type is FailureType.PERFORMANCE:
        return base * effect.performance
    return base * interop_multiplier(shelf_model, disk_model)


def validate() -> Dict[str, float]:
    """Sanity-check the calibration tables; returns headline totals.

    Raises:
        CalibrationError: if a class total strays outside the 2-8% band
            the paper's Fig. 4 axes cover, or mixes don't sum to 1.
    """
    totals = {}
    for cls, rates in CLASS_RATES.items():
        if not 2.0 <= rates.total <= 8.0:
            raise CalibrationError(
                "class %s total AFR %.2f%% outside the paper's observed band"
                % (cls.value, rates.total)
            )
        totals[cls.value] = rates.total
    mix_sum = sum(INTERCONNECT_CAUSE_MIX.values())
    if abs(mix_sum - 1.0) > 1e-9:
        raise CalibrationError("interconnect cause mix sums to %.4f" % mix_sum)
    return totals
