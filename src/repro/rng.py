"""Deterministic random-stream management.

Every stochastic component in the simulator draws from a named child
stream of a single root seed, so that (a) whole-fleet simulations are
reproducible from one integer, and (b) changing how many draws one
subsystem makes does not perturb the randomness any other subsystem sees.

The implementation uses :class:`numpy.random.Generator` seeded through
``SeedSequence.spawn``-style key derivation: a child stream is identified
by the root seed plus a tuple of string/int keys hashed into the seed
entropy.
"""

from __future__ import annotations

from typing import Iterable, Tuple, Union

import numpy as np

Key = Union[str, int]


def _key_entropy(keys: Iterable[Key]) -> Tuple[int, ...]:
    """Map a key path to a tuple of 32-bit integers for SeedSequence."""
    entropy = []
    for key in keys:
        if isinstance(key, int):
            entropy.append(key & 0xFFFFFFFF)
            entropy.append((key >> 32) & 0xFFFFFFFF)
        else:
            # A stable (non-PYTHONHASHSEED) string hash: FNV-1a, 64-bit.
            acc = 0xCBF29CE484222325
            for byte in key.encode("utf-8"):
                acc ^= byte
                acc = (acc * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
            entropy.append(acc & 0xFFFFFFFF)
            entropy.append((acc >> 32) & 0xFFFFFFFF)
    return tuple(entropy)


class RandomSource:
    """A root of deterministic, independently-keyed random streams.

    >>> src = RandomSource(seed=42)
    >>> a = src.stream("shocks", 7).random()
    >>> b = src.stream("shocks", 7).random()
    >>> a == b
    True
    """

    def __init__(self, seed: int) -> None:
        if not isinstance(seed, (int, np.integer)):
            raise TypeError("seed must be an integer, got %r" % (seed,))
        self.seed = int(seed)

    def stream(self, *keys: Key) -> np.random.Generator:
        """Return a fresh generator for the given key path.

        Calling twice with the same keys returns generators with identical
        output; distinct key paths give statistically independent streams.
        """
        seq = np.random.SeedSequence(
            entropy=self.seed, spawn_key=_key_entropy(keys)
        )
        return np.random.Generator(np.random.PCG64(seq))

    def child(self, *keys: Key) -> "RandomSource":
        """Derive a namespaced child source (for handing to a subsystem)."""
        seq = np.random.SeedSequence(
            entropy=self.seed, spawn_key=_key_entropy(keys)
        )
        # Collapse the child sequence to a new integer seed.
        return RandomSource(int(seq.generate_state(1, np.uint64)[0]))

    def __repr__(self) -> str:
        return "RandomSource(seed=%d)" % self.seed
