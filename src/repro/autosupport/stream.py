"""Incremental (streaming) log parsing.

The batch parser (:mod:`repro.autosupport.parser`) wants the whole log
text; real AutoSupport feeds arrive as line streams over weeks.  The
:class:`StreamingLogParser` accepts lines (or arbitrary text chunks) as
they come, maintains the same cascade/dedup state the batch parser
uses, and yields each subsystem failure as soon as its RAID-layer line
arrives.  Feeding it a whole log in any chunking produces exactly the
batch parser's events.
"""

from __future__ import annotations

from typing import Iterator, List, Optional

from repro.autosupport.messages import parse_line
from repro.autosupport.parser import CASCADE_WINDOW_SECONDS, build_event
from repro.core.dataset import DEDUP_WINDOW_SECONDS
from repro.errors import LogFormatError
from repro.failures.events import FailureEvent
from repro.failures.types import FailureType
from repro.simulate.clock import SimulationClock
from repro.topology.system import StorageSystem


class StreamingLogParser:
    """Parses one system's log incrementally.

    Usage::

        parser = StreamingLogParser(system)
        for chunk in feed:                  # any chunking
            for event in parser.feed(chunk):
                handle(event)
        for event in parser.close():        # flush a trailing partial line
            handle(event)
    """

    def __init__(
        self,
        system: StorageSystem,
        clock: SimulationClock = SimulationClock(),
        strict: bool = False,
    ) -> None:
        self.system = system
        self.clock = clock
        self.strict = strict
        self._buffer = ""
        self._last_lower: dict = {}
        self._last_raid: dict = {}
        self._events_out = 0

    # -- feeding -------------------------------------------------------------

    def feed(self, chunk: str) -> Iterator[FailureEvent]:
        """Consume a text chunk; yield completed failure events.

        Lines may be split across chunks; only complete lines (ending in
        a newline) are processed, the remainder is buffered.
        """
        self._buffer += chunk
        while True:
            newline = self._buffer.find("\n")
            if newline < 0:
                return
            line = self._buffer[:newline]
            self._buffer = self._buffer[newline + 1 :]
            event = self._process_line(line)
            if event is not None:
                yield event

    def close(self) -> Iterator[FailureEvent]:
        """Flush any buffered partial line and finish."""
        if self._buffer.strip():
            event = self._process_line(self._buffer)
            self._buffer = ""
            if event is not None:
                yield event

    @property
    def events_emitted(self) -> int:
        """How many failures this parser has yielded so far."""
        return self._events_out

    # -- internals ------------------------------------------------------------

    def _process_line(self, raw: str) -> Optional[FailureEvent]:
        if not raw.strip():
            return None
        try:
            line = parse_line(self.clock, raw)
        except LogFormatError:
            if self.strict:
                raise
            return None
        if line.disk_id is None:
            return None
        if not line.is_raid_event:
            previous = self._last_lower.get(line.disk_id)
            if previous is None or line.time - previous > CASCADE_WINDOW_SECONDS:
                self._last_lower[line.disk_id] = line.time
            return None
        try:
            failure_type = FailureType.from_raid_event(line.event)
        except ValueError:
            if self.strict:
                raise LogFormatError("unknown RAID event %r" % line.event)
            return None
        key = (line.disk_id, failure_type)
        previous = self._last_raid.get(key)
        if previous is not None and line.time - previous < DEDUP_WINDOW_SECONDS:
            return None
        self._last_raid[key] = line.time
        onset = self._last_lower.get(line.disk_id)
        occur = (
            onset
            if onset is not None and line.time - onset <= CASCADE_WINDOW_SECONDS
            else line.time
        )
        event = build_event(self.system, line, failure_type, occur)
        if event is None:
            if self.strict:
                raise LogFormatError(
                    "disk %r not found in snapshot topology" % line.disk_id
                )
            return None
        self._events_out += 1
        return event


def stream_system_log(
    text: str,
    system: StorageSystem,
    clock: SimulationClock = SimulationClock(),
    chunk_size: int = 4096,
    strict: bool = False,
) -> List[FailureEvent]:
    """Parse a whole log through the streaming parser (for comparison).

    Feeds ``text`` in ``chunk_size`` pieces; the result must equal the
    batch parser's output regardless of the chunking.
    """
    parser = StreamingLogParser(system, clock, strict)
    events: List[FailureEvent] = []
    for start in range(0, len(text), chunk_size):
        events.extend(parser.feed(text[start : start + chunk_size]))
    events.extend(parser.close())
    return events
