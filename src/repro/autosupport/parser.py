"""Parse AutoSupport-style logs back into failure datasets.

The parser follows the paper's methodology (§2.5): only RAID-layer
events count as storage subsystem failures; the lower-layer cascade
preceding a RAID event supplies the incident's onset time; cascades
with no RAID-layer event (retries, failovers) are ignored; duplicate
RAID events for the same disk and type within an hour are collapsed.
Topology attributes (models, class, RAID group, path configuration)
come from the configuration snapshot, as in the real study.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.autosupport.messages import LogLine, parse_line
from repro.autosupport.writer import LogArchive
from repro.autosupport.snapshot import parse_snapshot
from repro.core.columns import EventTable, use_columnar
from repro.core.dataset import DEDUP_WINDOW_SECONDS, FailureDataset
from repro.errors import LogFormatError
from repro.failures.events import FailureEvent
from repro.failures.types import FailureType
from repro.fleet.fleet import Fleet
from repro.simulate.clock import SimulationClock
from repro.topology.system import StorageSystem

#: How far back before a RAID event the cascade's first line may lie.
CASCADE_WINDOW_SECONDS = 600.0


def parse_system_log(
    text: str,
    system: StorageSystem,
    clock: SimulationClock = SimulationClock(),
    strict: bool = False,
) -> List[FailureEvent]:
    """Extract the subsystem failures recorded in one system's log.

    Args:
        text: full log text.
        system: the owning system (from the parsed snapshot).
        clock: timestamp mapping.
        strict: raise on unparseable lines instead of skipping them
            (real log mining tolerates noise; tests use strict mode).

    Returns:
        Events in detection-time order, duplicates collapsed.
    """
    lines: List[LogLine] = []
    for raw in text.splitlines():
        if not raw.strip():
            continue
        try:
            lines.append(parse_line(clock, raw))
        except LogFormatError:
            if strict:
                raise
    lines.sort(key=lambda line: line.time)

    # Most recent lower-layer line time per disk, to date the cascade onset.
    last_lower: Dict[str, float] = {}
    last_raid: Dict[Tuple[str, FailureType], float] = {}
    events: List[FailureEvent] = []
    for line in lines:
        if line.disk_id is None:
            continue
        if not line.is_raid_event:
            last_lower[line.disk_id] = min(
                last_lower.get(line.disk_id, line.time), line.time
            ) if _within_cascade(last_lower.get(line.disk_id), line.time) else line.time
            continue
        try:
            failure_type = FailureType.from_raid_event(line.event)
        except ValueError:
            if strict:
                raise LogFormatError("unknown RAID event %r" % line.event)
            continue
        key = (line.disk_id, failure_type)
        previous = last_raid.get(key)
        if previous is not None and line.time - previous < DEDUP_WINDOW_SECONDS:
            continue
        last_raid[key] = line.time
        onset = last_lower.get(line.disk_id)
        occur = (
            onset
            if onset is not None and line.time - onset <= CASCADE_WINDOW_SECONDS
            else line.time
        )
        event = build_event(system, line, failure_type, occur)
        if event is not None:
            events.append(event)
        elif strict:
            raise LogFormatError(
                "disk %r not found in snapshot topology" % line.disk_id
            )
    return events


def _within_cascade(previous: Optional[float], time: float) -> bool:
    return previous is not None and time - previous <= CASCADE_WINDOW_SECONDS


def build_event(
    system: StorageSystem,
    line: LogLine,
    failure_type: FailureType,
    occur_time: float,
) -> Optional[FailureEvent]:
    """Materialize a RAID-layer log line into a :class:`FailureEvent`.

    Resolves the line's disk id against the system's snapshot topology
    (slot, then disk generation within the slot) and attaches every
    topology attribute the analyses group by.  Returns ``None`` when
    the disk cannot be found — callers decide whether that is noise to
    skip or (in strict mode) an error.  Shared by the batch parser and
    the streaming parser.
    """
    slot_key = line.disk_id.rsplit("#", 1)[0]
    try:
        slot = system.slot_by_key(slot_key)
    except Exception:
        return None
    disk = None
    for candidate in slot.disks:
        if candidate.disk_id == line.disk_id:
            disk = candidate
            break
    if disk is None:
        return None
    return FailureEvent(
        occur_time=min(occur_time, line.time),
        detect_time=line.time,
        failure_type=failure_type,
        disk_id=disk.disk_id,
        shelf_id=disk.shelf_id,
        raid_group_id=slot.raid_group_id,
        system_id=system.system_id,
        system_class=system.system_class.value,
        disk_model=disk.model,
        shelf_model=system.shelf_model,
        dual_path=system.dual_path,
        replaced_disk=(failure_type is FailureType.DISK),
    )


#: Backwards-compatible alias from before the helper was public.
_build_event = build_event


def parse_archive(
    archive: LogArchive,
    clock: SimulationClock = SimulationClock(),
    fleet: Optional[Fleet] = None,
    strict: bool = False,
) -> FailureDataset:
    """Parse a whole archive into a failure dataset.

    Args:
        archive: per-system logs + snapshot.
        clock: timestamp mapping.
        fleet: reuse an existing fleet instead of parsing the snapshot
            (they must describe the same topology).
        strict: propagate malformed-line errors.
    """
    if fleet is None:
        fleet = parse_snapshot(archive.snapshot)
    events: List[FailureEvent] = []
    for system_id, text in archive.logs.items():
        try:
            system = fleet.system(system_id)
        except Exception:
            if strict:
                raise LogFormatError("log for unknown system %r" % system_id)
            continue
        events.extend(parse_system_log(text, system, clock, strict))
    if use_columnar():
        # Columnarize once at the parse boundary; detect-time sorting
        # happens on the arrays instead of the dataclass list.
        return FailureDataset(
            events=EventTable.from_events(events), fleet=fleet
        )
    return FailureDataset(events=events, fleet=fleet)
