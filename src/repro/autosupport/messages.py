"""Log-line rendering and tokenizing (the Fig. 3 message dialect).

A line looks like::

    Sun Jul 23 05:43:36 2006 [fci.device.timeout:error]: Adapter 8
    encountered a device timeout on device sh-mr-00012-03/07#0

The structured core — timestamp, ``[event:severity]`` tag, and the disk
identifier embedded in the prose — is what the parser extracts; the
prose varies per event name like real support logs do.
"""

from __future__ import annotations

import dataclasses
import re
from typing import Optional

from repro.errors import LogFormatError
from repro.simulate.clock import SimulationClock

#: Prose templates per event name; ``{disk}`` and ``{serial}`` are
#: substituted.  Unknown events fall back to a generic message.
_TEMPLATES = {
    "fci.device.timeout": "Adapter 8 encountered a device timeout on device {disk}",
    "fci.adapter.reset": "Resetting Fibre Channel adapter 8 (device {disk})",
    "fci.path.failover": "Redirecting I/O for device {disk} to secondary path",
    "scsi.cmd.abortedByHost": "Device {disk}: Command aborted by host adapter",
    "scsi.cmd.selectionTimeout": (
        "Device {disk}: Adapter/target error: Targeted device did not "
        "respond to requested I/O. I/O will be retried."
    ),
    "scsi.cmd.noMorePaths": "Device {disk}: No more paths to device. All retries have failed.",
    "scsi.cmd.retrySuccess": "Device {disk}: Command retry succeeded",
    "scsi.cmd.checkCondition": "Device {disk}: Check condition: sense data logged",
    "scsi.cmd.protocolViolation": "Device {disk}: Protocol violation in command response",
    "scsi.cmd.latencyWarning": "Device {disk}: Command latency exceeded threshold",
    "disk.ioMediumError": "Disk {disk}: medium error detected on read",
    "disk.failurePredicted": "Disk {disk}: failure predicted by health monitor",
    "disk.driver.incompatible": "Disk {disk}: driver rejected device response",
    "disk.slowIO": "Disk {disk}: I/O service time degraded",
    "disk.latencyRecovered": "Disk {disk}: I/O service time back to normal",
    "raid.disk.failed": "File system Disk {disk} S/N [{serial}] failed",
    "raid.config.filesystem.disk.missing": (
        "File system Disk {disk} S/N [{serial}] is missing."
    ),
    "raid.disk.ioerror": "File system Disk {disk} S/N [{serial}] returned bad I/O",
    "raid.disk.timeout.slow": (
        "File system Disk {disk} S/N [{serial}] is not responding in time"
    ),
}

_SEVERITIES = {"info", "warning", "error"}

_LINE_RE = re.compile(
    r"^(?P<timestamp>\w{3} \w{3} [ \d]\d \d{2}:\d{2}:\d{2} \d{4}) "
    r"\[(?P<event>[\w.]+):(?P<severity>\w+)\]: (?P<message>.*)$"
)
_DISK_RE = re.compile(r"(?:device|Device|Disk) (?P<disk>\S+?/\d{2}#\d+)")
_SERIAL_RE = re.compile(r"S/N \[(?P<serial>[^\]]+)\]")


@dataclasses.dataclass(frozen=True)
class LogLine:
    """One parsed log line.

    Attributes:
        time: simulation seconds (second resolution — logs round).
        event: dotted event name.
        severity: ``info | warning | error``.
        disk_id: the disk referenced by the prose, if any.
        serial: the serial number in the prose, if any.
        message: the free-text part.
    """

    time: float
    event: str
    severity: str
    disk_id: Optional[str]
    serial: Optional[str]
    message: str

    @property
    def layer(self) -> str:
        """The emitting layer (first component of the event name)."""
        return self.event.split(".", 1)[0]

    @property
    def is_raid_event(self) -> bool:
        """Whether this is a RAID-layer event (a subsystem failure mark)."""
        return self.layer == "raid"


def format_line(
    clock: SimulationClock,
    time: float,
    event: str,
    disk_id: str,
    serial: str = "",
    severity: Optional[str] = None,
) -> str:
    """Render one log line in the Fig. 3 dialect."""
    if severity is None:
        severity = "info" if event.startswith("raid.") or event.endswith("Recovered") else "error"
    if severity not in _SEVERITIES:
        raise LogFormatError("unknown severity %r" % severity)
    template = _TEMPLATES.get(event, "Device {disk}: event %s" % event)
    message = template.format(disk=disk_id, serial=serial or "UNKNOWN")
    return "%s [%s:%s]: %s" % (clock.format(time), event, severity, message)


def parse_line(clock: SimulationClock, line: str) -> LogLine:
    """Parse one log line.

    Raises:
        LogFormatError: when the line does not match the dialect.
    """
    match = _LINE_RE.match(line.strip())
    if match is None:
        raise LogFormatError("unparseable log line: %r" % line[:120])
    time = clock.parse(match.group("timestamp"))
    message = match.group("message")
    disk_match = _DISK_RE.search(message)
    serial_match = _SERIAL_RE.search(message)
    return LogLine(
        time=time,
        event=match.group("event"),
        severity=match.group("severity"),
        disk_id=disk_match.group("disk") if disk_match else None,
        serial=serial_match.group("serial") if serial_match else None,
        message=message,
    )
