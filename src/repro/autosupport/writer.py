"""Render an injection result into per-system AutoSupport-style logs.

Each subsystem failure becomes a cascade: the lower-layer error lines
(FC/SCSI/disk driver) leading up to it, then the RAID-layer event that
tags the failure type — the structure of the paper's Fig. 3.  Recovered
incidents (multipath failovers, successful retries) appear as partial
cascades with no RAID-layer line, so a naive parser that counted any
error line would overcount, exactly as §2.5 warns.
"""

from __future__ import annotations

import dataclasses
import gzip
import pathlib
from typing import Dict, List, Tuple

from repro.errors import LogFormatError
from repro.failures.injector import InjectionResult
from repro.failures.raidlayer import component_errors_for_failure
from repro.autosupport.messages import format_line
from repro.autosupport.snapshot import write_snapshot
from repro.simulate.clock import SimulationClock


@dataclasses.dataclass
class LogArchive:
    """A bundle of per-system logs plus the configuration snapshot.

    Attributes:
        logs: system id -> full log text (newline-terminated lines).
        snapshot: the fleet configuration snapshot text.
    """

    logs: Dict[str, str]
    snapshot: str

    def total_lines(self) -> int:
        """Total log lines across all systems."""
        return sum(text.count("\n") for text in self.logs.values())

    def save_to(self, directory: str, compress: bool = False) -> None:
        """Write the archive to a directory (one log file per system).

        Args:
            directory: output directory (created if absent).
            compress: gzip each log (``.log.gz``) — real AutoSupport
                archives ship compressed; the loader handles both forms.
        """
        path = pathlib.Path(directory)
        path.mkdir(parents=True, exist_ok=True)
        (path / "snapshot.conf").write_text(self.snapshot)
        for system_id, text in self.logs.items():
            if compress:
                with gzip.open(path / ("%s.log.gz" % system_id), "wt") as handle:
                    handle.write(text)
            else:
                (path / ("%s.log" % system_id)).write_text(text)

    @classmethod
    def load_from(cls, directory: str) -> "LogArchive":
        """Read an archive previously written with :meth:`save_to`.

        Plain ``.log`` and gzipped ``.log.gz`` files may coexist; a
        system present in both forms raises (ambiguous archive).
        """
        path = pathlib.Path(directory)
        snapshot_file = path / "snapshot.conf"
        if not snapshot_file.exists():
            raise LogFormatError("no snapshot.conf in %s" % directory)
        logs: Dict[str, str] = {}
        for log_file in sorted(path.glob("*.log")):
            logs[log_file.stem] = log_file.read_text()
        for log_file in sorted(path.glob("*.log.gz")):
            system_id = log_file.name[: -len(".log.gz")]
            if system_id in logs:
                raise LogFormatError(
                    "system %s present both plain and gzipped" % system_id
                )
            with gzip.open(log_file, "rt") as handle:
                logs[system_id] = handle.read()
        return cls(logs=logs, snapshot=snapshot_file.read_text())


def write_logs(
    injection: InjectionResult,
    clock: SimulationClock = SimulationClock(),
) -> LogArchive:
    """Render the injection's events and recovered errors as logs."""
    serial_index: Dict[str, Tuple[str, str]] = {}
    for system in injection.fleet.systems:
        for disk in system.iter_disks():
            serial_index[disk.disk_id] = (disk.serial, system.system_id)

    per_system: Dict[str, List[Tuple[float, str]]] = {
        system.system_id: [] for system in injection.fleet.systems
    }

    for event in injection.events:
        serial, system_id = serial_index[event.disk_id]
        lines = per_system[system_id]
        for error in component_errors_for_failure(
            event.failure_type, event.disk_id, event.detect_time
        ):
            time = max(0.0, error.time)
            lines.append(
                (time, format_line(clock, time, error.event, event.disk_id, serial))
            )
        lines.append(
            (
                event.detect_time,
                format_line(
                    clock,
                    event.detect_time,
                    event.failure_type.raid_event,
                    event.disk_id,
                    serial,
                ),
            )
        )

    for error in injection.recovered_errors:
        serial, system_id = serial_index.get(error.disk_id, ("", ""))
        if not system_id:
            continue  # disk id unknown to the fleet; drop the noise line
        time = max(0.0, error.time)
        per_system[system_id].append(
            (time, format_line(clock, time, error.event, error.disk_id, serial))
        )

    logs = {}
    for system_id, lines in per_system.items():
        lines.sort(key=lambda pair: pair[0])
        logs[system_id] = "".join(text + "\n" for _, text in lines)
    return LogArchive(logs=logs, snapshot=write_snapshot(injection.fleet))
