"""AutoSupport-style log pipeline: writer, parser, config snapshots.

The real study mined support logs: syslog-style event streams in which
a failure appears as a cascade of lower-layer errors culminating in a
RAID-layer event (Fig. 3), plus weekly configuration snapshots that map
disks to shelves, RAID groups, and models (§2.5).  This package renders
the simulator's output into that textual form and parses it back, so
the analysis layer can run end-to-end on *logs*, exactly as the paper's
authors did.
"""

from repro.autosupport.messages import format_line, parse_line, LogLine
from repro.autosupport.writer import LogArchive, write_logs
from repro.autosupport.snapshot import write_snapshot, parse_snapshot
from repro.autosupport.parser import build_event, parse_archive, parse_system_log

__all__ = [
    "format_line",
    "parse_line",
    "LogLine",
    "LogArchive",
    "write_logs",
    "write_snapshot",
    "parse_snapshot",
    "build_event",
    "parse_archive",
    "parse_system_log",
]
