"""Configuration snapshots: serializing a fleet to text and back.

The real AutoSupport feed copies system configuration weekly (§2.5):
which disks sit in which shelves, which disks form each RAID group,
disk and shelf models.  The analyses need exactly that metadata, so the
snapshot format captures the fleet's full topology (plus per-disk
install/remove times, which the paper derives from the replacement
history) in a line-oriented INI-like text that round-trips losslessly.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import LogFormatError
from repro.fleet.fleet import Fleet
from repro.topology.classes import SystemClass
from repro.topology.components import Disk, Shelf
from repro.topology.raidgroup import RAIDGroup, RaidType
from repro.topology.system import StorageSystem

_FORMAT_VERSION = "1"


def write_snapshot(fleet: Fleet) -> str:
    """Serialize a fleet (topology + disk lifetimes) to snapshot text."""
    lines: List[str] = []
    lines.append("[meta]")
    lines.append("version = %s" % _FORMAT_VERSION)
    lines.append("duration_seconds = %r" % fleet.duration_seconds)
    lines.append("")
    for system in fleet.systems:
        lines.append("[system %s]" % system.system_id)
        lines.append("class = %s" % system.system_class.value)
        lines.append("shelf_model = %s" % system.shelf_model)
        lines.append("disk_model = %s" % system.primary_disk_model)
        lines.append("dual_path = %s" % ("true" if system.dual_path else "false"))
        lines.append("deploy_time = %r" % system.deploy_time)
        lines.append("")
        for shelf in system.shelves:
            lines.append("[shelf %s]" % shelf.shelf_id)
            lines.append("system = %s" % system.system_id)
            lines.append("model = %s" % shelf.model)
            lines.append("slots = %d" % len(shelf.slots))
            lines.append(
                "slot_groups = %s"
                % ",".join(slot.raid_group_id for slot in shelf.slots)
            )
            lines.append("")
            for slot in shelf.slots:
                for disk in slot.disks:
                    lines.append("[disk %s]" % disk.disk_id)
                    lines.append("model = %s" % disk.model)
                    lines.append("slot = %d" % disk.slot_index)
                    lines.append("serial = %s" % disk.serial)
                    lines.append("install_time = %r" % disk.install_time)
                    remove = (
                        "none" if disk.remove_time is None else repr(disk.remove_time)
                    )
                    lines.append("remove_time = %s" % remove)
                    lines.append("")
        for group in system.raid_groups:
            lines.append("[raidgroup %s]" % group.raid_group_id)
            lines.append("system = %s" % system.system_id)
            lines.append("raid_type = %s" % group.raid_type.value)
            lines.append("slot_keys = %s" % ",".join(group.slot_keys))
            lines.append("")
    return "\n".join(lines) + "\n"


def parse_snapshot(text: str) -> Fleet:
    """Rebuild a fleet from snapshot text.

    Raises:
        LogFormatError: on malformed sections or dangling references.
    """
    sections = _split_sections(text)
    meta = _take_unique(sections, "meta")
    duration = float(meta.get("duration_seconds", "0"))
    if duration <= 0.0:
        raise LogFormatError("snapshot meta lacks a positive duration")

    systems: Dict[str, StorageSystem] = {}
    order: List[str] = []
    for name, fields in sections:
        if not name.startswith("system "):
            continue
        system_id = name.split(" ", 1)[1]
        try:
            system = StorageSystem(
                system_id=system_id,
                system_class=SystemClass(fields["class"]),
                shelf_model=fields["shelf_model"],
                primary_disk_model=fields["disk_model"],
                dual_path=fields["dual_path"] == "true",
                deploy_time=float(fields["deploy_time"]),
            )
        except (KeyError, ValueError) as exc:
            raise LogFormatError("bad system section %r: %s" % (system_id, exc)) from None
        systems[system_id] = system
        order.append(system_id)

    for name, fields in sections:
        if not name.startswith("shelf "):
            continue
        shelf_id = name.split(" ", 1)[1]
        system = _owner(systems, fields, shelf_id)
        shelf = Shelf(shelf_id=shelf_id, model=fields["model"], system_id=system.system_id)
        slot_groups = fields.get("slot_groups", "")
        group_ids = slot_groups.split(",") if slot_groups else []
        n_slots = int(fields["slots"])
        if group_ids and len(group_ids) != n_slots:
            raise LogFormatError("shelf %s slot_groups mismatch" % shelf_id)
        shelf.add_slots(n_slots, group_ids or None)
        system.shelves.append(shelf)

    shelf_owner: Dict[str, StorageSystem] = {
        shelf.shelf_id: system
        for system in systems.values()
        for shelf in system.shelves
    }
    for name, fields in sections:
        if not name.startswith("disk "):
            continue
        disk_id = name.split(" ", 1)[1]
        slot_key = disk_id.rsplit("#", 1)[0]
        shelf_id = slot_key.rsplit("/", 1)[0]
        system = shelf_owner.get(shelf_id)
        if system is None:
            raise LogFormatError(
                "%s references unknown shelf %r" % (disk_id, shelf_id)
            )
        slot = system.slot_by_key(slot_key)
        remove_raw = fields["remove_time"]
        disk = Disk(
            disk_id=disk_id,
            model=fields["model"],
            system_id=system.system_id,
            shelf_id=shelf_id,
            slot_index=int(fields["slot"]),
            raid_group_id=slot.raid_group_id,
            install_time=float(fields["install_time"]),
            remove_time=None if remove_raw == "none" else float(remove_raw),
            serial=fields.get("serial", ""),
        )
        # Disks are serialized in install order per slot; append directly
        # (the occupancy check in install() assumes live mutation order).
        slot.disks.append(disk)

    for name, fields in sections:
        if not name.startswith("raidgroup "):
            continue
        group_id = name.split(" ", 1)[1]
        system = _owner(systems, fields, group_id)
        slot_keys = fields["slot_keys"].split(",") if fields["slot_keys"] else []
        system.raid_groups.append(
            RAIDGroup(
                raid_group_id=group_id,
                system_id=system.system_id,
                raid_type=RaidType(fields["raid_type"]),
                slot_keys=slot_keys,
            )
        )

    return Fleet(
        systems=[systems[system_id] for system_id in order],
        duration_seconds=duration,
    )


def _split_sections(text: str) -> List[Tuple[str, Dict[str, str]]]:
    sections: List[Tuple[str, Dict[str, str]]] = []
    current: Optional[Tuple[str, Dict[str, str]]] = None
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        if line.startswith("[") and line.endswith("]"):
            current = (line[1:-1], {})
            sections.append(current)
            continue
        if current is None or "=" not in line:
            raise LogFormatError("stray snapshot line: %r" % line[:80])
        key, _, value = line.partition("=")
        current[1][key.strip()] = value.strip()
    return sections


def _take_unique(
    sections: List[Tuple[str, Dict[str, str]]], name: str
) -> Dict[str, str]:
    matches = [fields for section, fields in sections if section == name]
    if len(matches) != 1:
        raise LogFormatError("expected exactly one [%s] section" % name)
    return matches[0]


def _owner(
    systems: Dict[str, StorageSystem], fields: Dict[str, str], child: str
) -> StorageSystem:
    system_id = fields.get("system", "")
    if system_id not in systems:
        raise LogFormatError("%s references unknown system %r" % (child, system_id))
    return systems[system_id]
