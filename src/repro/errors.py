"""Exception hierarchy for the ``repro`` package.

All exceptions raised by this library derive from :class:`ReproError` so
callers can catch library failures with a single ``except`` clause while
letting programming errors (``TypeError`` etc.) propagate.
"""


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class SpecificationError(ReproError):
    """A fleet/simulation specification is inconsistent or out of range."""


class TopologyError(ReproError):
    """A storage topology operation is invalid (e.g. overfilling a shelf)."""


class CalibrationError(ReproError):
    """Calibration constants are missing or inconsistent for a request."""


class LogFormatError(ReproError):
    """An AutoSupport-style log line or cascade could not be parsed."""


class AnalysisError(ReproError):
    """An analysis was requested on data that cannot support it."""


class FittingError(ReproError):
    """A distribution fit failed to converge or received invalid data."""


class RaidError(ReproError):
    """A RAID encode/reconstruct operation is invalid or unrecoverable."""


class JobExecutionError(ReproError):
    """A runtime job failed, timed out, or exhausted its retries."""
