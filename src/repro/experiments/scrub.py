"""Experiment: proactive scrub period sensitivity.

The studied systems verify all disks hourly (§2.5), so failures are
detected within about an hour of occurring — that lag is why the Fig. 9
CDFs "do not start from the zero point."  This sweep varies the scrub
period and checks two consequences: the detection-lag floor moves with
it, and slower detection raises the RAID data-loss rate (rebuilds start
later, widening the multi-failure overlap window).
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.core.dataset import FailureDataset
from repro.experiments.base import ExperimentContext, ExperimentResult, register
from repro.failures.injector import InjectorConfig
from repro.fleet.spec import FleetSpec
from repro.raid.dataloss import estimate_dataloss
from repro.simulate.vector.engine import make_engine
from repro.units import SECONDS_PER_HOUR


@register("sweep-scrub", "Sensitivity: proactive scrub (detection) period")
def run(context: ExperimentContext) -> ExperimentResult:
    """Sweep the scrub period: 1 h (paper) vs 8 h vs 48 h."""
    lag_mean: Dict[float, float] = {}
    loss_rate: Dict[float, float] = {}
    for hours in (1.0, 8.0, 48.0):
        engine = make_engine(
            FleetSpec.paper_default(scale=context.scale),
            injector_config=InjectorConfig(
                detection_lag_max_seconds=hours * SECONDS_PER_HOUR
            ),
        )
        dataset: FailureDataset = engine.run(seed=context.seed).dataset
        lags = np.array(
            [event.detect_time - event.occur_time for event in dataset.events]
        )
        lag_mean[hours] = float(lags.mean())
        loss_rate[hours] = estimate_dataloss(
            dataset
        ).loss_rate_per_1000_group_years()

    ordered_lags = [lag_mean[key] for key in sorted(lag_mean)]
    ordered_loss = [loss_rate[key] for key in sorted(loss_rate)]
    checks = {
        # Uniform detection lag means ~period/2 on average.
        "hourly_scrub_lag_half_hour": abs(lag_mean[1.0] - 1800.0) < 300.0,
        "lag_scales_with_period": ordered_lags == sorted(ordered_lags),
        # Slower detection widens overlap windows -> more data loss.
        "loss_rate_grows_with_period": ordered_loss[-1] >= ordered_loss[0],
    }
    text = "Scrub-period sensitivity\n" + "\n".join(
        "  period %4.0f h -> mean detection lag %6.0f s, data loss %.2f "
        "per 1000 group-years" % (key, lag_mean[key], loss_rate[key])
        for key in sorted(lag_mean)
    )
    return ExperimentResult(
        experiment_id="sweep-scrub",
        title="Sensitivity: proactive scrub (detection) period",
        text=text,
        data={"lag_mean": lag_mean, "loss_rate": loss_rate},
        checks=checks,
    )
