"""Experiment: availability (SLA) consequences of subsystem failures.

The paper's motivation (§1.1) is sizing resiliency to meet SLA metrics
like data availability.  This experiment turns the simulated failure
streams into per-class availability — and surfaces a twist on the
low-end paradox: AFR is a per-*disk* metric but availability is a
per-*system* metric, so the low-end class (worst per-disk subsystem
AFR, but only ~12 disks per system) delivers the *best* availability,
while the big near-line/mid/high systems (~80-95 disks each) accumulate
the most interruptions per system.  Dual-path systems still beat
single-path peers, since masking removes outages outright.
"""

from __future__ import annotations

from repro.core.availability import (
    availability_by_class,
    format_availability,
    _merge_intervals,
    DEFAULT_OUTAGE_SECONDS,
)
from repro.experiments.base import ExperimentContext, ExperimentResult, register
from repro.topology.classes import SystemClass


@register("availability", "Per-class availability (SLA view)")
def run(context: ExperimentContext) -> ExperimentResult:
    """Availability per class plus the single/dual-path comparison."""
    dataset = context.dataset("paper-default")
    reports = availability_by_class(dataset)
    by_label = {report.label: report for report in reports}

    # Dual vs single path availability within the high-end class.
    def class_outage(predicate) -> tuple:
        per_system = {}
        for event in dataset.deduplicated().events:
            duration = DEFAULT_OUTAGE_SECONDS.get(event.failure_type, 0.0)
            per_system.setdefault(event.system_id, []).append(
                (event.detect_time, min(event.detect_time + duration,
                                        dataset.duration_seconds))
            )
        in_service = 0.0
        outage = 0.0
        for system in dataset.fleet.systems:
            if not predicate(system):
                continue
            in_service += max(0.0, dataset.duration_seconds - system.deploy_time)
            outage += _merge_intervals(per_system.get(system.system_id, []))
        return in_service, outage

    single_service, single_outage = class_outage(
        lambda s: s.system_class is SystemClass.HIGH_END and not s.dual_path
    )
    dual_service, dual_outage = class_outage(
        lambda s: s.system_class is SystemClass.HIGH_END and s.dual_path
    )
    single_avail = 1.0 - single_outage / single_service
    dual_avail = 1.0 - dual_outage / dual_service

    checks = {
        "all_classes_above_two_nines": all(
            report.nines > 2.0 for report in reports
        ),
        # Per-system availability inverts the per-disk AFR ordering:
        # small systems interrupt least, so low-end (12 disks/system)
        # wins despite its worst per-disk subsystem AFR.
        "lowend_best_availability": by_label["Low-end"].availability
        == max(report.availability for report in reports),
        "dual_path_more_available": dual_avail > single_avail,
    }
    text = "%s\n\nHigh-end single path availability %.5f%% vs dual path %.5f%%" % (
        format_availability(reports),
        100.0 * single_avail,
        100.0 * dual_avail,
    )
    return ExperimentResult(
        experiment_id="availability",
        title="Per-class availability (SLA view)",
        text=text,
        data={
            "by_class": {
                report.label: {
                    "availability": report.availability,
                    "nines": report.nines,
                    "downtime_hours_per_system_year": report.downtime_hours_per_system_year,
                }
                for report in reports
            },
            "highend_single_availability": single_avail,
            "highend_dual_availability": dual_avail,
        },
        checks=checks,
    )
