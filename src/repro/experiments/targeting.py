"""Experiment: which failure type is worth building resiliency against?

The paper's §7 future work: "design resiliency mechanisms targeting
individual failure types."  Step zero is ranking the targets.  For each
failure type, remove its failures from the recorded history (a perfect
targeted mechanism) and measure the marginal drop in subsystem AFR per
class and in RAID data-loss risk.  The checks encode what the paper's
AFR breakdowns imply: interconnect resiliency is the biggest lever in
primary classes; disk-targeted resiliency (what RAID already is) is the
biggest lever only in near-line systems — and interconnect removal also
buys the largest data-loss reduction, because its failures arrive in
group-threatening bursts.
"""

from __future__ import annotations

from typing import Dict

from repro.core.afr import dataset_afr
from repro.core.whatif import counterfactual_without_type
from repro.experiments.base import ExperimentContext, ExperimentResult, register
from repro.failures.types import FAILURE_TYPE_ORDER, FailureType
from repro.raid.dataloss import estimate_dataloss
from repro.topology.classes import SYSTEM_CLASS_ORDER, SystemClass


@register("target-ranking", "Ranking resiliency targets by failure type")
def run(context: ExperimentContext) -> ExperimentResult:
    """Rank the marginal benefit of perfect per-type resiliency."""
    dataset = context.dataset("paper-default").excluding_disk_family()
    base_loss = estimate_dataloss(dataset).loss_rate_per_1000_group_years()

    afr_cut: Dict[str, Dict[str, float]] = {}
    loss_cut: Dict[str, float] = {}
    for failure_type in FAILURE_TYPE_ORDER:
        removed = counterfactual_without_type(dataset, failure_type)
        per_class: Dict[str, float] = {}
        for system_class in SYSTEM_CLASS_ORDER:
            predicate = lambda s, c=system_class: s.system_class is c  # noqa: E731
            before = dataset_afr(dataset, None, predicate).percent
            after = dataset_afr(removed, None, predicate).percent
            per_class[system_class.value] = (
                0.0 if before == 0.0 else 1.0 - after / before
            )
        afr_cut[failure_type.value] = per_class
        after_loss = estimate_dataloss(removed).loss_rate_per_1000_group_years()
        loss_cut[failure_type.value] = (
            0.0 if base_loss == 0.0 else 1.0 - after_loss / base_loss
        )

    def best_target(class_value: str) -> str:
        return max(afr_cut, key=lambda ft: afr_cut[ft][class_value])

    checks = {
        # Primary classes: the interconnect is the top target.
        "lowend_targets_interconnect": best_target("low_end")
        == FailureType.PHYSICAL_INTERCONNECT.value,
        "midrange_targets_interconnect": best_target("mid_range")
        == FailureType.PHYSICAL_INTERCONNECT.value,
        # Near-line: disks are genuinely the biggest contributor there.
        "nearline_targets_disks": best_target("nearline")
        == FailureType.DISK.value,
        # Bursty interconnect failures also dominate data-loss risk.
        "interconnect_cuts_loss_most": loss_cut[
            FailureType.PHYSICAL_INTERCONNECT.value
        ]
        == max(loss_cut.values()),
    }
    lines = ["Marginal subsystem-AFR cut from perfect per-type resiliency:"]
    header = "  %-24s" % "target type" + "".join(
        "%11s" % c.value for c in SYSTEM_CLASS_ORDER
    ) + "%12s" % "loss cut"
    lines.append(header)
    for failure_type in FAILURE_TYPE_ORDER:
        row = afr_cut[failure_type.value]
        lines.append(
            "  %-24s" % failure_type.value
            + "".join(
                "%10.0f%%" % (100.0 * row[c.value]) for c in SYSTEM_CLASS_ORDER
            )
            + "%11.0f%%" % (100.0 * loss_cut[failure_type.value])
        )
    return ExperimentResult(
        experiment_id="target-ranking",
        title="Ranking resiliency targets by failure type",
        text="\n".join(lines),
        data={"afr_cut": afr_cut, "loss_cut": loss_cut},
        checks=checks,
    )
