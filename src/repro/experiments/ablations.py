"""Ablations: which design choices produce the paper's phenomena.

- ``ablate-shocks`` — disable the shared shock processes: burstiness
  and P(2) inflation must collapse toward the independence model,
  demonstrating the shocks (not some analysis artifact) carry
  Findings 8 and 11.
- ``ablate-span`` — pack RAID groups into single shelves instead of
  spanning: RAID-group burstiness must *rise* to shelf levels,
  the counterfactual behind Finding 9's recommendation.
- ``ablate-raidloss`` — replay failure histories against the RAID
  layer: correlated (bursty) failures must produce more data-loss
  incidents than the independence ablation, and RAID-DP must beat
  RAID4; this is the paper's "revisit RAID's assumptions" implication
  made quantitative.
"""

from __future__ import annotations

from repro.core.correlation import correlation_by_type
from repro.core.timebetween import analyze_gaps
from repro.experiments.base import ExperimentContext, ExperimentResult, register
from repro.failures.types import FailureType
from repro.raid.dataloss import estimate_dataloss
from repro.topology.raidgroup import RaidType


@register("ablate-shocks", "Shock processes ablation: independence restored")
def run_shocks(context: ExperimentContext) -> ExperimentResult:
    """Compare paper-default against the no-shocks scenario."""
    default = context.dataset("paper-default")
    independent = context.dataset("no-shocks")

    default_burst = analyze_gaps(default, "shelf", None).burst_fraction
    indep_burst = analyze_gaps(independent, "shelf", None).burst_fraction

    default_corr = correlation_by_type(default, "shelf")
    indep_corr = correlation_by_type(independent, "shelf")
    default_inflation = {
        r.failure_type.value: r.inflation for r in default_corr
    }
    indep_inflation = {r.failure_type.value: r.inflation for r in indep_corr}

    checks = {
        # Without shocks the bursty pattern disappears ...
        "burstiness_collapses": indep_burst < 0.5 * default_burst,
        # ... and P(2) drops to within noise of the independence model
        # for the previously most-inflated types.
        "interconnect_inflation_collapses": (
            indep_inflation["physical_interconnect"]
            < 0.35 * default_inflation["physical_interconnect"]
        ),
        # A residual ~1.5-2x inflation remains even under true
        # independence, because pooling shelves with heterogeneous
        # rates (different classes, sizes, disk models) raises the
        # pooled P(2) over P(1)^2/2 — a bias the paper's pooled
        # methodology shares.  It must stay far below the correlated
        # fleet's 6-30x.
        "residual_inflation_small": all(
            value <= 4.0 for value in indep_inflation.values()
        ),
        "every_type_collapses": all(
            indep_inflation[key] < 0.5 * default_inflation[key]
            for key in default_inflation
        ),
    }
    text = (
        "Shock ablation (shelf scope)\n"
        "  overall burst fraction: %.1f%% -> %.1f%%\n"
        "  P(2) inflation by type (default -> no shocks):\n%s"
        % (
            100.0 * default_burst,
            100.0 * indep_burst,
            "\n".join(
                "    %-24s %6.1fx -> %5.1fx"
                % (key, default_inflation[key], indep_inflation[key])
                for key in default_inflation
            ),
        )
    )
    return ExperimentResult(
        experiment_id="ablate-shocks",
        title="Shock processes ablation",
        text=text,
        data={
            "default_burst": default_burst,
            "independent_burst": indep_burst,
            "default_inflation": default_inflation,
            "independent_inflation": indep_inflation,
        },
        checks=checks,
    )


@register("ablate-span", "RAID-group spanning ablation (Finding 9)")
def run_span(context: ExperimentContext) -> ExperimentResult:
    """Compare spanning vs single-shelf RAID group layouts."""
    spanning = context.dataset("paper-default")
    packed = context.dataset("single-shelf-raid")

    span_group = analyze_gaps(spanning, "raid_group", None).burst_fraction
    span_shelf = analyze_gaps(spanning, "shelf", None).burst_fraction
    packed_group = analyze_gaps(packed, "raid_group", None).burst_fraction
    packed_shelf = analyze_gaps(packed, "shelf", None).burst_fraction

    checks = {
        # Spanning is what separates group from shelf burstiness ...
        "spanning_reduces_group_burstiness": span_group < span_shelf - 0.05,
        # ... single-shelf groups are as bursty as their shelves.
        "packed_groups_as_bursty_as_shelves": abs(packed_group - packed_shelf)
        < 0.10,
        "packed_burstier_than_spanning": packed_group > span_group + 0.05,
    }
    text = (
        "RAID-group layout ablation (burst fraction = P(gap < 10^4 s))\n"
        "  spanning layout:     shelf %.1f%%   RAID group %.1f%%\n"
        "  single-shelf layout: shelf %.1f%%   RAID group %.1f%%"
        % (
            100.0 * span_shelf,
            100.0 * span_group,
            100.0 * packed_shelf,
            100.0 * packed_group,
        )
    )
    return ExperimentResult(
        experiment_id="ablate-span",
        title="RAID-group spanning ablation",
        text=text,
        data={
            "spanning": {"shelf": span_shelf, "raid_group": span_group},
            "single_shelf": {"shelf": packed_shelf, "raid_group": packed_group},
        },
        checks=checks,
    )


@register("ablate-raidloss", "Data-loss risk under correlated vs independent failures")
def run_raidloss(context: ExperimentContext) -> ExperimentResult:
    """RAID-layer consequences of the observed failure correlations."""
    from repro.core.afr import dataset_afr
    from repro.raid.mttdl import fleet_mttdl_prediction
    from repro.raid.rebuild import RebuildModel

    correlated = context.dataset("paper-default")
    independent = context.dataset("no-shocks")

    corr_report = estimate_dataloss(correlated)
    indep_report = estimate_dataloss(independent)
    corr_rate = corr_report.loss_rate_per_1000_group_years()
    indep_rate = indep_report.loss_rate_per_1000_group_years()

    # The classic analytic MTTDL (independent exponential failures,
    # whole-disk failures only) for the same fleet and rebuild model.
    rebuild = RebuildModel()
    disk_afr = dataset_afr(correlated, FailureType.DISK).percent
    analytic_rate = fleet_mttdl_prediction(
        correlated,
        rebuild_seconds=rebuild.window_seconds(144.0),
        disk_afr_percent=disk_afr,
    )

    # Per-RAID-level loss counts under the correlated history.
    raid4_losses = corr_report.loss_incidents_by_type[RaidType.RAID4]
    raid6_losses = corr_report.loss_incidents_by_type[RaidType.RAID6]
    raid4_groups = max(1, corr_report.groups_by_type.get(RaidType.RAID4, 0))
    raid6_groups = max(1, corr_report.groups_by_type.get(RaidType.RAID6, 0))

    checks = {
        # Correlated failures make RAID lose data more often than the
        # independence assumption predicts.
        "correlation_raises_loss_rate": corr_rate > 1.5 * indep_rate,
        # Double parity still helps under correlated failures.
        "raid6_beats_raid4": (raid6_losses / raid6_groups)
        <= (raid4_losses / raid4_groups),
        "losses_exist_under_correlation": corr_report.total_loss_incidents > 0,
        # The Patterson-style analytic model underestimates observed
        # losses — the paper's "revisit RAID's assumptions" implication.
        "analytic_mttdl_optimistic": corr_rate > analytic_rate,
    }
    text = (
        "RAID data-loss replay (loss incidents per 1000 group-years)\n"
        "  correlated (paper-default): %.2f  (%d incidents, %d RAID4 / %d RAID6)\n"
        "  independent (no-shocks):    %.2f  (%d incidents)\n"
        "  analytic MTTDL prediction:  %.4f (independent exponential model)"
        % (
            corr_rate,
            corr_report.total_loss_incidents,
            raid4_losses,
            raid6_losses,
            indep_rate,
            indep_report.total_loss_incidents,
            analytic_rate,
        )
    )
    return ExperimentResult(
        experiment_id="ablate-raidloss",
        title="Data-loss risk under correlated vs independent failures",
        text=text,
        data={
            "correlated_rate": corr_rate,
            "independent_rate": indep_rate,
            "analytic_rate": analytic_rate,
            "raid4_losses": raid4_losses,
            "raid6_losses": raid6_losses,
        },
        checks=checks,
    )
