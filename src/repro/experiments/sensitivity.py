"""Sensitivity sweeps over the failure model's design parameters.

These go beyond the paper's artifacts: they verify the *model* responds
monotonically to its levers, which is what makes the reproduced shapes
trustworthy rather than coincidental.

- ``sweep-multipath`` — mask probability 0 -> 0.95: dual-path
  interconnect AFR reduction must rise monotonically toward the
  network-path share of the cause mix.
- ``sweep-burstiness`` — shock share (rho) scaled down: the shelf
  burst fraction and the P(2) inflation must fall monotonically.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List

from repro.core.correlation import correlation_for
from repro.core.dataset import FailureDataset
from repro.core.significance import compare_rates
from repro.core.timebetween import analyze_gaps
from repro.errors import AnalysisError
from repro.experiments.base import ExperimentContext, ExperimentResult, register
from repro.failures.injector import InjectorConfig
from repro.failures.multipath import MultipathModel
from repro.failures.types import FailureType
from repro.fleet import calibration
from repro.fleet.spec import FleetSpec
from repro.simulate.vector.engine import make_engine


def _simulate(context: ExperimentContext, config: InjectorConfig) -> FailureDataset:
    engine = make_engine(
        FleetSpec.paper_default(scale=context.scale), injector_config=config
    )
    return engine.run(seed=context.seed).dataset


@register("sweep-multipath", "Sensitivity: multipath mask probability")
def run_multipath_sweep(context: ExperimentContext) -> ExperimentResult:
    """Dual-path benefit as a function of failover success probability."""
    from repro.topology.classes import SystemClass

    reductions: Dict[float, float] = {}
    for mask_probability in (0.0, 0.5, 0.95):
        dataset = _simulate(
            context,
            InjectorConfig(multipath=MultipathModel(mask_probability=mask_probability)),
        )
        # Average the per-class reductions rather than pooling classes:
        # pooling would let a skewed class mix between the dual/single
        # groups masquerade as a multipath effect.
        per_class = []
        for system_class in (SystemClass.MID_RANGE, SystemClass.HIGH_END):
            comparison = compare_rates(
                dataset,
                lambda s, c=system_class: s.system_class is c and not s.dual_path,
                lambda s, c=system_class: s.system_class is c and s.dual_path,
                FailureType.PHYSICAL_INTERCONNECT,
                description="%s mask=%.2f" % (system_class.value, mask_probability),
            )
            per_class.append(comparison.reduction)
        reductions[mask_probability] = sum(per_class) / len(per_class)

    ordered = [reductions[key] for key in sorted(reductions)]
    network_share = calibration.INTERCONNECT_CAUSE_MIX[
        list(calibration.INTERCONNECT_CAUSE_MIX)[0]
    ]
    checks = {
        "monotone_in_mask_probability": ordered == sorted(ordered),
        # Interconnect events arrive in shelf-sized clusters, so the
        # effective sample is clusters, not events: the zero-mask noise
        # floor is wide.
        "zero_mask_no_real_benefit": abs(reductions[0.0]) < 0.25,
        # Benefit saturates at the maskable (network-path) share.
        "bounded_by_network_share": reductions[0.95] <= network_share + 0.12,
        "benefit_grows_substantially": reductions[0.95]
        > reductions[0.0] + 0.20,
    }
    text = "Multipath sensitivity (interconnect AFR reduction on dual path)\n" + "\n".join(
        "  mask probability %.2f -> reduction %5.1f%%" % (key, 100.0 * value)
        for key, value in sorted(reductions.items())
    )
    return ExperimentResult(
        experiment_id="sweep-multipath",
        title="Sensitivity: multipath mask probability",
        text=text,
        data={"reductions": reductions},
        checks=checks,
    )


def _scaled_shock_params(factor: float):
    scaled = {}
    for failure_type, params in calibration.SHOCK_PARAMS.items():
        scaled[failure_type] = dataclasses.replace(
            params, rho=max(1e-9, params.rho * factor)
        )
    return scaled


@register("sweep-burstiness", "Sensitivity: shared-shock share (rho)")
def run_burstiness_sweep(context: ExperimentContext) -> ExperimentResult:
    """Burstiness and correlation as functions of the shock share."""
    burst: Dict[float, float] = {}
    inflation: Dict[float, float] = {}
    for factor in (0.25, 0.6, 1.0):
        dataset = _simulate(
            context, InjectorConfig(shock_params=_scaled_shock_params(factor))
        )
        burst[factor] = analyze_gaps(dataset, "shelf", None).burst_fraction
        try:
            inflation[factor] = correlation_for(
                dataset, FailureType.PHYSICAL_INTERCONNECT, "shelf"
            ).inflation
        except AnalysisError:
            inflation[factor] = float("nan")

    burst_ordered: List[float] = [burst[key] for key in sorted(burst)]
    inflation_ordered = [inflation[key] for key in sorted(inflation)]
    checks = {
        "burstiness_monotone_in_rho": burst_ordered == sorted(burst_ordered),
        "inflation_increases_with_rho": inflation_ordered[0]
        < inflation_ordered[-1],
    }
    text = "Shock-share sensitivity\n" + "\n".join(
        "  rho x%.2f -> burst %5.1f%%, interconnect P(2) inflation %5.1fx"
        % (key, 100.0 * burst[key], inflation[key])
        for key in sorted(burst)
    )
    return ExperimentResult(
        experiment_id="sweep-burstiness",
        title="Sensitivity: shared-shock share (rho)",
        text=text,
        data={"burst": burst, "inflation": inflation},
        checks=checks,
    )
