"""Experiment plumbing: context (cached simulations), results, registry."""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Optional, Tuple, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.runtime.context import RuntimeContext

from repro import obs
from repro.core.dataset import FailureDataset
from repro.errors import SpecificationError
from repro.simulate.scenario import run_scenario

#: Default fleet scale for experiments: 1:20 of the paper's 39,000
#: systems (~2,000 systems, ~90,000 disks) — large enough for the
#: paper's significance tests to resolve, small enough for seconds-long
#: runs.
DEFAULT_SCALE = 0.05
DEFAULT_SEED = 1


@dataclasses.dataclass
class ExperimentContext:
    """Shared state for a batch of experiments.

    Simulating the fleet dominates experiment cost, and most figures
    read the *same* paper-default simulation, so the context caches one
    dataset per scenario name.

    Attributes:
        scale: fleet scale for all scenarios run through this context.
        seed: root random seed.
        via_logs: route datasets through the AutoSupport log pipeline.
        runtime: optional :class:`repro.runtime.RuntimeContext`; when
            set, scenario lookups route through its content-addressed
            result cache (and count in its metrics) instead of
            simulating directly.
        shards: split every scenario simulation into this many
            spill-to-disk shards (see :mod:`repro.runtime.shard`);
            sharding always routes through a runtime context (a default
            one is built lazily when none was provided).
    """

    scale: float = DEFAULT_SCALE
    seed: int = DEFAULT_SEED
    via_logs: bool = False
    runtime: Optional["RuntimeContext"] = None
    shards: int = 1

    def __post_init__(self) -> None:
        self._results: Dict[str, object] = {}

    def result(self, scenario: str = "paper-default"):
        """The (cached) full simulation result of a named scenario."""
        if scenario not in self._results:
            if self.runtime is None and self.shards != 1:
                # Sharded execution needs a pool + shard cache; build
                # the default serial context on first use.
                from repro.runtime.context import RuntimeContext

                self.runtime = RuntimeContext()
            if self.runtime is not None:
                result = self.runtime.run_scenario(
                    scenario,
                    scale=self.scale,
                    seed=self.seed,
                    via_logs=self.via_logs,
                    shards=self.shards,
                )
            else:
                result = run_scenario(
                    scenario,
                    scale=self.scale,
                    seed=self.seed,
                    via_logs=self.via_logs,
                )
            self._results[scenario] = result
        return self._results[scenario]

    def dataset(self, scenario: str = "paper-default") -> FailureDataset:
        """The (cached) dataset of a named scenario."""
        return self.result(scenario).dataset


@dataclasses.dataclass
class ExperimentResult:
    """Output of one experiment.

    Attributes:
        experiment_id: registry id, e.g. ``"fig4b"``.
        title: what the paper artifact shows.
        text: rendered tables (what the CLI prints).
        data: structured series behind the tables.
        checks: named shape assertions vs the paper (all should hold).
    """

    experiment_id: str
    title: str
    text: str
    data: Dict[str, object]
    checks: Dict[str, bool]

    @property
    def passed(self) -> bool:
        """Whether every shape check held."""
        return all(self.checks.values())

    def failed_checks(self) -> List[str]:
        """Names of the checks that failed."""
        return [name for name, ok in self.checks.items() if not ok]


Runner = Callable[[ExperimentContext], ExperimentResult]

EXPERIMENTS: Dict[str, Tuple[str, Runner]] = {}


def register(experiment_id: str, title: str) -> Callable[[Runner], Runner]:
    """Decorator registering an experiment runner under an id."""

    def decorate(runner: Runner) -> Runner:
        if experiment_id in EXPERIMENTS:
            raise SpecificationError(
                "experiment %r registered twice" % experiment_id
            )
        EXPERIMENTS[experiment_id] = (title, runner)
        return runner

    return decorate


def run_experiment(
    experiment_id: str, context: Optional[ExperimentContext] = None
) -> ExperimentResult:
    """Run one experiment by id (creating a default context if needed)."""
    try:
        _title, runner = EXPERIMENTS[experiment_id]
    except KeyError:
        raise SpecificationError(
            "unknown experiment %r (have: %s)"
            % (experiment_id, ", ".join(sorted(EXPERIMENTS)))
        ) from None
    with obs.span("experiment.%s" % experiment_id):
        result = runner(context or ExperimentContext())
    obs.inc("experiments.run")
    if not result.passed:
        obs.inc("experiments.failed_checks", len(result.failed_checks()))
    return result
