"""Figure 3: a log excerpt reporting a physical interconnect failure.

The paper's Fig. 3 shows the cascade a physical interconnect failure
leaves in the support log: FC adapter timeouts, SCSI aborts and
retries, ``No more paths to device``, and finally the RAID layer's
``disk.missing`` event.  This experiment renders the simulated fleet's
logs and extracts one such cascade, checking its structure matches the
paper's excerpt.  (Figures 1, 2, and 8 are architecture diagrams; their
content is embodied in :mod:`repro.topology` and asserted by its tests.)
"""

from __future__ import annotations

from typing import List

from repro.autosupport.messages import parse_line
from repro.autosupport.writer import write_logs
from repro.experiments.base import ExperimentContext, ExperimentResult, register
from repro.failures.types import FailureType
from repro.simulate.clock import SimulationClock


@register("fig3", "Example log excerpt of a physical interconnect failure")
def run(context: ExperimentContext) -> ExperimentResult:
    """Find and render one interconnect-failure cascade from the logs."""
    result = context.result("paper-default")
    archive = result.archive or write_logs(result.injection)
    clock = SimulationClock()

    target_event = FailureType.PHYSICAL_INTERCONNECT.raid_event
    excerpt: List[str] = []
    for text in archive.logs.values():
        lines = text.splitlines()
        for index, raw in enumerate(lines):
            if target_event not in raw:
                continue
            raid_line = parse_line(clock, raw)
            # Collect this disk's preceding cascade lines (within the
            # cascade window).
            cascade = [
                candidate
                for candidate in lines[max(0, index - 40) : index]
                if raid_line.disk_id and raid_line.disk_id in candidate
                and parse_line(clock, candidate).time >= raid_line.time - 600
            ]
            if len(cascade) >= 4:
                excerpt = cascade + [raw]
                break
        if excerpt:
            break

    events = [parse_line(clock, raw).event for raw in excerpt]
    checks = {
        "cascade_found": bool(excerpt),
        # The paper's excerpt starts with an FC-layer timeout ...
        "starts_at_fc_layer": bool(events) and events[0].startswith("fci."),
        # ... escalates through SCSI ...
        "passes_through_scsi": any(e.startswith("scsi.") for e in events),
        # ... includes the terminal no-more-paths error ...
        "no_more_paths_logged": "scsi.cmd.noMorePaths" in events,
        # ... and ends at the RAID layer's disk.missing event.
        "ends_with_disk_missing": bool(events)
        and events[-1] == "raid.config.filesystem.disk.missing",
        # Times increase down the cascade (Fig. 3's timeline).
        "timeline_ordered": all(
            parse_line(clock, a).time <= parse_line(clock, b).time
            for a, b in zip(excerpt, excerpt[1:])
        ),
    }
    return ExperimentResult(
        experiment_id="fig3",
        title="Example log excerpt of a physical interconnect failure",
        text="Figure 3 (regenerated):\n" + "\n".join("  " + raw for raw in excerpt),
        data={"events": events, "lines": len(excerpt)},
        checks=checks,
    )
