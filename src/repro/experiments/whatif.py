"""Experiment: the dual-path-everywhere counterfactual.

Finding 7 measures the dual-path benefit on systems that *have* dual
paths.  The counterfactual asks the fleet-planning question: how much
subsystem AFR would disappear if every system were upgraded?  Answered
by editing the recorded history — masking single-path network-path
interconnect failures with the failover success probability — rather
than re-simulating.
"""

from __future__ import annotations

from repro.core.afr import dataset_afr
from repro.core.whatif import (
    counterfactual_dual_path_everywhere,
    expected_dual_path_everywhere_reduction,
)
from repro.experiments.base import ExperimentContext, ExperimentResult, register
from repro.failures.types import FailureType


@register("whatif-dualpath", "Counterfactual: dual paths everywhere")
def run(context: ExperimentContext) -> ExperimentResult:
    """Apply the counterfactual and compare against the factual AFR."""
    dataset = context.dataset("paper-default")
    counterfactual = counterfactual_dual_path_everywhere(
        dataset, seed=context.seed
    )
    factual_afr = dataset_afr(dataset).percent
    counterfactual_afr = dataset_afr(counterfactual).percent
    reduction = 1.0 - counterfactual_afr / factual_afr
    expected = expected_dual_path_everywhere_reduction(dataset)

    factual_phys = dataset_afr(
        dataset, FailureType.PHYSICAL_INTERCONNECT
    ).percent
    counterfactual_phys = dataset_afr(
        counterfactual, FailureType.PHYSICAL_INTERCONNECT
    ).percent

    checks = {
        # The edit only removes events, so AFR can only fall.
        "afr_falls": counterfactual_afr < factual_afr,
        # The sampled reduction matches its closed-form expectation.
        "matches_expectation": abs(reduction - expected) < 0.03,
        # Only the interconnect segment moves.
        "disk_afr_untouched": dataset_afr(
            counterfactual, FailureType.DISK
        ).percent
        == dataset_afr(dataset, FailureType.DISK).percent,
        # Worth doing: a double-digit relative AFR cut fleet-wide.
        "meaningful_cut": reduction > 0.10,
    }
    text = (
        "Dual-path-everywhere counterfactual\n"
        "  subsystem AFR:       %.2f%% -> %.2f%%  (-%.0f%%)\n"
        "  interconnect AFR:    %.2f%% -> %.2f%%\n"
        "  closed-form expectation of the cut: %.0f%%"
        % (
            factual_afr,
            counterfactual_afr,
            100.0 * reduction,
            factual_phys,
            counterfactual_phys,
            100.0 * expected,
        )
    )
    return ExperimentResult(
        experiment_id="whatif-dualpath",
        title="Counterfactual: dual paths everywhere",
        text=text,
        data={
            "factual_afr": factual_afr,
            "counterfactual_afr": counterfactual_afr,
            "reduction": reduction,
            "expected_reduction": expected,
        },
        checks=checks,
    )
