"""Figure 10: empirical vs theoretical P(2) (failure self-correlation).

Checks encode Finding 11: for every failure type, at both scopes, the
empirical probability of a shelf/RAID-group seeing exactly two failures
in a year far exceeds the ``P(1)^2 / 2`` that independence would allow
— by about 6x for disk failures and 10-25x for the other types — and
the difference is statistically significant.
"""

from __future__ import annotations

from repro.core.correlation import correlation_by_type
from repro.core.report import format_correlation
from repro.experiments.base import ExperimentContext, ExperimentResult, register
from repro.failures.types import FailureType


def _panel(experiment_id: str, scope: str, label: str):
    title = "Empirical vs theoretical P(2), %s" % label

    @register(experiment_id, title)
    def run(context: ExperimentContext) -> ExperimentResult:
        dataset = context.dataset("paper-default")
        results = correlation_by_type(dataset, scope, window_years=1.0)
        by_type = {r.failure_type: r for r in results}
        disk = by_type[FailureType.DISK]
        others = [r for r in results if r.failure_type is not FailureType.DISK]
        checks = {
            # Every type exceeds the independence prediction ...
            "all_types_exceed_theory": all(
                r.p2_empirical > r.p2_theoretical for r in results
            ),
            # ... significantly (the paper: 99.5% confidence).
            "significant_at_995": sum(1 for r in results if r.correlated) >= 3,
        }
        if scope == "shelf":
            # The paper's quantitative bands are quoted for the shelf
            # panel: ~6x for disk, 10-25x for the rest (bands widened
            # for simulation noise — P(2) counts are small at bench
            # scale).  Spanning dilutes shelf-shock correlation at the
            # RAID-group scope, so only weaker bounds apply there.
            checks["disk_inflation_around_6x"] = 2.5 <= disk.inflation <= 15.0
            checks["other_types_inflation_10_25x"] = all(
                5.0 <= r.inflation <= 80.0 for r in others
            )
            checks["disk_least_inflated"] = disk.inflation <= min(
                r.inflation for r in others
            )
        else:
            checks["disk_inflation_positive"] = 1.5 <= disk.inflation <= 15.0
            checks["other_types_inflated"] = all(
                2.0 <= r.inflation <= 100.0 for r in others
            )
        return ExperimentResult(
            experiment_id=experiment_id,
            title=title,
            text=format_correlation("Figure 10: %s" % title, results),
            data={
                r.failure_type.value: {
                    "p1": r.p1,
                    "p2_empirical": r.p2_empirical,
                    "p2_theoretical": r.p2_theoretical,
                    "inflation": r.inflation,
                    "p_value": r.test.p_value,
                }
                for r in results
            },
            checks=checks,
        )

    return run


_panel("fig10a", "shelf", "per shelf enclosure")
_panel("fig10b", "raid_group", "per RAID group")
