"""Figure 5: AFR by disk model, per class + shelf-enclosure panel.

Six panels, one per shipping (class, shelf model) combination; checks
encode Findings 3-5: Disk H systems show roughly double the AFR, disk
AFR is stable across environments while subsystem AFR is not, and AFR
does not grow with capacity.
"""

from __future__ import annotations

import statistics
from typing import Dict, List, Tuple

from repro.core.afr import dataset_afr
from repro.core.breakdown import afr_by_disk_model
from repro.core.findings import capacity_trend, noise_corrected_cv
from repro.core.report import format_breakdown
from repro.experiments.base import ExperimentContext, ExperimentResult, register
from repro.failures.types import FAILURE_TYPE_ORDER, FailureType
from repro.topology.classes import SystemClass

#: The paper's six panels, in figure order (a)-(f).
PANELS: List[Tuple[str, SystemClass, str]] = [
    ("fig5a", SystemClass.NEARLINE, "C"),
    ("fig5b", SystemClass.LOW_END, "A"),
    ("fig5c", SystemClass.LOW_END, "B"),
    ("fig5d", SystemClass.MID_RANGE, "C"),
    ("fig5e", SystemClass.MID_RANGE, "B"),
    ("fig5f", SystemClass.HIGH_END, "B"),
]


def _register_panel(experiment_id: str, system_class: SystemClass, shelf: str):
    title = "AFR by disk model: %s with shelf model %s" % (
        system_class.label,
        shelf,
    )

    @register(experiment_id, title)
    def run(context: ExperimentContext) -> ExperimentResult:
        dataset = context.dataset("paper-default")
        rows = afr_by_disk_model(dataset, system_class, shelf)
        data = {
            row.label: {
                **{ft.value: row.percent(ft) for ft in FAILURE_TYPE_ORDER},
                "total": row.total_percent,
                "systems": row.systems,
            }
            for row in rows
        }
        h_rows = [r for r in rows if r.label.startswith("Disk H")]
        other_rows = [r for r in rows if not r.label.startswith("Disk H")]
        checks = {"panel_nonempty": bool(rows)}
        if h_rows and other_rows:
            h_mean = statistics.mean(r.total_percent for r in h_rows)
            other_mean = statistics.mean(r.total_percent for r in other_rows)
            # Finding 3: the problematic family stands well above peers
            # (the fleet-wide ~2x claim is checked by the findings
            # engine; per-panel samples are noisier, hence 1.25x here).
            checks["disk_h_elevated"] = h_mean > 1.25 * other_mean
            # Finding 3 detail: H inflates protocol+performance too.
            # Pool events over exposure (means of noisy per-model rates
            # are fragile at bench scale).
            h_pred = (
                lambda s: s.system_class is system_class
                and s.shelf_model == shelf
                and s.primary_disk_model.startswith("H-")
            )
            o_pred = (
                lambda s: s.system_class is system_class
                and s.shelf_model == shelf
                and not s.primary_disk_model.startswith("H-")
            )
            h_pp = sum(
                dataset_afr(dataset, ft, h_pred).percent
                for ft in (FailureType.PROTOCOL, FailureType.PERFORMANCE)
            )
            other_pp = sum(
                dataset_afr(dataset, ft, o_pred).percent
                for ft in (FailureType.PROTOCOL, FailureType.PERFORMANCE)
            )
            checks["disk_h_inflates_protocol_performance"] = h_pp > other_pp
        return ExperimentResult(
            experiment_id=experiment_id,
            title=title,
            text=format_breakdown("Figure 5 panel: %s" % title, rows),
            data={"rows": data},
            checks=checks,
        )

    return run


for _id, _cls, _shelf in PANELS:
    _register_panel(_id, _cls, _shelf)


@register("fig5-stability", "Cross-environment stability of disk vs subsystem AFR")
def run_stability(context: ExperimentContext) -> ExperimentResult:
    """Finding 4/5 rollup across all panels.

    For every disk model deployed in 2+ environments, compare the
    coefficient of variation of its *disk* AFR against that of its
    *subsystem* AFR across environments; and check the capacity
    non-trend on the D family (Fig. 5e's D-1 vs D-2).
    """
    dataset = context.dataset("paper-default")
    environments: Dict[str, List[Tuple[SystemClass, str]]] = {}
    for _, system_class, shelf in PANELS:
        panel = {
            s.primary_disk_model
            for s in dataset.fleet.systems
            if s.system_class is system_class and s.shelf_model == shelf
        }
        for model in panel:
            environments.setdefault(model, []).append((system_class, shelf))

    disk_cvs: List[float] = []
    total_cvs: List[float] = []
    per_model: Dict[str, Dict[str, float]] = {}
    for model, envs in sorted(environments.items()):
        # Only models spanning 2+ system classes face genuinely
        # different environments; same-class panels differ only by
        # sampling noise and would dilute the comparison.
        if len({system_class for system_class, _ in envs}) < 2:
            continue
        disk_rates, disk_counts, total_rates, total_counts = [], [], [], []
        for system_class, shelf in envs:
            predicate = (
                lambda s, c=system_class, sm=shelf, dm=model: s.system_class is c
                and s.shelf_model == sm
                and s.primary_disk_model == dm
            )
            disk = dataset_afr(dataset, FailureType.DISK, predicate)
            total = dataset_afr(dataset, None, predicate)
            if disk.count < 10:
                continue  # too few events to speak to stability
            disk_rates.append(disk.percent)
            disk_counts.append(disk.count)
            total_rates.append(total.percent)
            total_counts.append(total.count)
        if len(disk_rates) < 2:
            continue
        disk_cv = noise_corrected_cv(disk_rates, disk_counts)
        total_cv = noise_corrected_cv(total_rates, total_counts)
        disk_cvs.append(disk_cv)
        total_cvs.append(total_cv)
        per_model[model] = {"disk_cv": disk_cv, "subsystem_cv": total_cv}

    trend = capacity_trend(dataset)
    checks = {
        "models_shared_across_environments": len(disk_cvs) >= 2,
        # Finding 4: disk AFR varies less across environments than
        # subsystem AFR does.  At tiny fleet scales no model may clear
        # the per-environment event floor; an empty comparison is a
        # failed check, not a crash.
        "disk_afr_more_stable_than_subsystem": bool(disk_cvs)
        and statistics.mean(disk_cvs) < statistics.mean(total_cvs),
        # Finding 5: no upward trend of disk AFR with capacity.
        "capacity_no_upward_trend": trend["mean"] <= 0.05,
    }
    lines = ["Cross-environment stability (Findings 4-5)"]
    for model, cvs in per_model.items():
        lines.append(
            "  %-5s disk AFR CV %.2f   subsystem AFR CV %.2f"
            % (model, cvs["disk_cv"], cvs["subsystem_cv"])
        )
    lines.append(
        "  capacity trend (larger minus smaller, disk AFR %%): "
        + ", ".join(
            "%s %+0.2f" % (key, value)
            for key, value in trend.items()
            if key != "mean"
        )
        + "  mean %+0.2f" % trend["mean"]
    )
    return ExperimentResult(
        experiment_id="fig5-stability",
        title="Cross-environment stability of disk vs subsystem AFR",
        text="\n".join(lines),
        data={"per_model": per_model, "capacity_trend": trend},
        checks=checks,
    )
