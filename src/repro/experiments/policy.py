"""Experiment: the predict-and-replace policy, end to end.

Connects the failure predictor (§7 future work) to an operational
policy and scores it on held-out time: train before month 22, act
after.  The checks assert (a) the policy is far better than random at
spending its replacement budget, (b) it preempts a meaningful share of
disk failures, and (c) — the paper's core point — a large population of
*non-disk* subsystem failures remains that no disk-replacement policy
can touch.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentContext, ExperimentResult, register
from repro.policy import PolicyConfig, evaluate_proactive_policy


@register("proactive-policy", "Predict-and-replace maintenance policy")
def run(context: ExperimentContext) -> ExperimentResult:
    """Train/apply/score the proactive policy on the default scenario."""
    injection = context.result("paper-default").injection
    config = PolicyConfig(flag_budget_fraction=0.003)
    _model, outcome = evaluate_proactive_policy(injection, config)

    unavoidable_share = outcome.unavoidable_failures_after_cutoff / max(
        1,
        outcome.unavoidable_failures_after_cutoff
        + outcome.disk_failures_after_cutoff,
    )
    checks = {
        "beats_random_budget_spend": outcome.lift_over_random > 5.0,
        "meaningful_coverage": outcome.avoided_share > 0.08,
        # Disk swaps cannot touch interconnect/protocol/performance
        # failures — which are the majority of subsystem failures.
        "most_failures_unavoidable_by_disk_swaps": unavoidable_share > 0.45,
    }
    return ExperimentResult(
        experiment_id="proactive-policy",
        title="Predict-and-replace maintenance policy",
        text=outcome.summary(),
        data={
            "flags": outcome.flags,
            "avoided": outcome.avoided_disk_failures,
            "precision": outcome.precision,
            "baseline_precision": outcome.baseline_precision,
            "lift": outcome.lift_over_random,
            "avoided_share": outcome.avoided_share,
            "unavoidable_share": unavoidable_share,
        },
        checks=checks,
    )
