"""Experiment registry: one runnable per paper table/figure.

Every experiment consumes an :class:`ExperimentContext` (which caches
simulated datasets so a session reuses one fleet across figures) and
returns an :class:`ExperimentResult` carrying the rendered tables, the
structured series behind them, and shape checks against the paper.

A context may also carry a :class:`repro.runtime.RuntimeContext`; then
scenario lookups go through the runtime's content-addressed result
cache, which is how ``repro run all`` shares one simulation across
every figure (and across worker processes via the on-disk cache).

Experiment ids::

    table1   fig4a  fig4b
    fig5a .. fig5f
    fig6     fig7a  fig7b
    fig9a    fig9b
    fig10a   fig10b
    ablate-shocks  ablate-span  ablate-raidloss
"""

from repro.experiments.base import (
    DEFAULT_SCALE,
    DEFAULT_SEED,
    EXPERIMENTS,
    ExperimentContext,
    ExperimentResult,
    register,
    run_experiment,
)

# Importing the modules registers their experiments.
from repro.experiments import (  # noqa: F401  (import for side effects)
    table1,
    fig4,
    fig5,
    fig6,
    fig7,
    fig9,
    fig10,
    ablations,
    sensitivity,
    prediction,
    availability,
    scrub,
    whatif,
    fig3,
    replacements,
    policy,
    targeting,
)

__all__ = [
    "DEFAULT_SCALE",
    "DEFAULT_SEED",
    "EXPERIMENTS",
    "ExperimentContext",
    "ExperimentResult",
    "register",
    "run_experiment",
]
