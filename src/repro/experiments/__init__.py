"""Experiment registry: one runnable per paper table/figure.

Every experiment consumes an :class:`ExperimentContext` (which caches
simulated datasets so a session reuses one fleet across figures) and
returns an :class:`ExperimentResult` carrying the rendered tables, the
structured series behind them, and shape checks against the paper.

Experiment ids::

    table1   fig4a  fig4b
    fig5a .. fig5f
    fig6     fig7a  fig7b
    fig9a    fig9b
    fig10a   fig10b
    ablate-shocks  ablate-span  ablate-raidloss
"""

from repro.experiments.base import (
    EXPERIMENTS,
    ExperimentContext,
    ExperimentResult,
    register,
    run_experiment,
)

# Importing the modules registers their experiments.
from repro.experiments import (  # noqa: F401  (import for side effects)
    table1,
    fig4,
    fig5,
    fig6,
    fig7,
    fig9,
    fig10,
    ablations,
    sensitivity,
    prediction,
    availability,
    scrub,
    whatif,
    fig3,
    replacements,
    policy,
    targeting,
)

__all__ = [
    "EXPERIMENTS",
    "ExperimentContext",
    "ExperimentResult",
    "register",
    "run_experiment",
]
