"""Figure 6: shelf enclosure model effect at fixed disk model (low-end).

Four panels (Disk A-2, A-3, D-2, D-3), each comparing shelf enclosure
models A and B on low-end systems.  Checks encode Finding 6: the shelf
model shifts the *physical interconnect* AFR significantly while
leaving the other failure types roughly alone, and the better shelf
model differs by disk model (interoperability).
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.breakdown import afr_by_shelf_model
from repro.core.report import format_breakdown
from repro.core.significance import compare_rates
from repro.experiments.base import ExperimentContext, ExperimentResult, register
from repro.failures.types import FailureType
from repro.topology.classes import SystemClass

PANEL_DISK_MODELS = ("A-2", "A-3", "D-2", "D-3")


@register("fig6", "AFR by shelf enclosure model (low-end, fixed disk model)")
def run(context: ExperimentContext) -> ExperimentResult:
    """All four panels plus the per-panel T-tests."""
    dataset = context.dataset("paper-default")
    sections: List[str] = []
    data: Dict[str, Dict[str, float]] = {}
    better: Dict[str, str] = {}
    significant = 0
    compared = 0
    other_types_shifted = 0

    for disk_model in PANEL_DISK_MODELS:
        rows = afr_by_shelf_model(dataset, SystemClass.LOW_END, disk_model)
        sections.append(
            format_breakdown("Figure 6: low-end Disk %s" % disk_model, rows)
        )
        if len(rows) < 2:
            continue
        compared += 1
        phys = compare_rates(
            dataset,
            lambda s, dm=disk_model: s.system_class is SystemClass.LOW_END
            and s.shelf_model == "A"
            and s.primary_disk_model == dm,
            lambda s, dm=disk_model: s.system_class is SystemClass.LOW_END
            and s.shelf_model == "B"
            and s.primary_disk_model == dm,
            FailureType.PHYSICAL_INTERCONNECT,
            description="low-end Disk %s, shelf A vs B" % disk_model,
        )
        disk_cmp = compare_rates(
            dataset,
            lambda s, dm=disk_model: s.system_class is SystemClass.LOW_END
            and s.shelf_model == "A"
            and s.primary_disk_model == dm,
            lambda s, dm=disk_model: s.system_class is SystemClass.LOW_END
            and s.shelf_model == "B"
            and s.primary_disk_model == dm,
            FailureType.DISK,
            description="low-end Disk %s disk-failure control" % disk_model,
        )
        sections.append("  " + phys.summary())
        if phys.significant_at(0.95):
            significant += 1
        if disk_cmp.significant_at(0.95):
            other_types_shifted += 1
        better[disk_model] = (
            "A" if phys.group_a.percent < phys.group_b.percent else "B"
        )
        data[disk_model] = {
            "shelf_a_phys": phys.group_a.percent,
            "shelf_b_phys": phys.group_b.percent,
            "p_value": phys.test.p_value,
            "disk_control_p_value": disk_cmp.test.p_value,
        }

    checks = {
        "all_panels_compared": compared == len(PANEL_DISK_MODELS),
        # Finding 6: the shelf model's interconnect effect is real.
        "interconnect_shift_significant": significant >= 2,
        # ... and specific to interconnects: disk failures (a control)
        # should mostly not shift with the shelf model.
        "disk_failures_mostly_unshifted": other_types_shifted <= 1,
        # Interoperability: no single shelf model is best everywhere.
        "best_shelf_depends_on_disk": len(set(better.values())) >= 2,
    }
    return ExperimentResult(
        experiment_id="fig6",
        title="AFR by shelf enclosure model (low-end, fixed disk model)",
        text="\n\n".join(sections),
        data={"panels": data, "better_shelf": better},
        checks=checks,
    )
