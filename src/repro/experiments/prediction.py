"""Experiment: failure prediction from component errors (§7 future work).

Not a paper artifact — the paper proposes it as future work — but its
findings tell us what the predictor must look like: component errors
precede failures, and shelf-level sharing means *neighbour* trouble is
informative.  The checks assert both.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentContext, ExperimentResult, register
from repro.predict import PredictorConfig, train_failure_predictor


@register("predict-failures", "Failure prediction from component errors")
def run(context: ExperimentContext) -> ExperimentResult:
    """Train and evaluate the predictor on the paper-default scenario."""
    injection = context.result("paper-default").injection
    _model, report = train_failure_predictor(
        injection, PredictorConfig(horizon_days=14.0)
    )

    # Baseline comparison: Poisson naive Bayes on the same split.
    from repro.core.dataset import FailureDataset
    from repro.predict.evaluate import roc_auc
    from repro.predict.features import FEATURE_NAMES, FeatureExtractor
    from repro.predict.naive_bayes import PoissonNaiveBayes
    from repro.predict.samples import build_samples

    dataset = FailureDataset.from_injection(injection)
    samples = build_samples(dataset, horizon_days=14.0, seed=0)
    train, test = samples.split_by_system(0.3)
    extractor = FeatureExtractor(injection.fleet, injection.recovered_errors)
    bayes = PoissonNaiveBayes.fit(
        extractor.matrix(train.pairs), train.labels, feature_names=FEATURE_NAMES
    )
    bayes_auc = roc_auc(
        test.labels, bayes.predict_proba(extractor.matrix(test.pairs))
    )

    checks = {
        "bayes_baseline_above_chance": bayes_auc > 0.6,
        "logistic_competitive_with_bayes": report.auc > bayes_auc - 0.05,
        # Far better than coin-flipping...
        "auc_above_chance": report.auc > 0.70,
        # ... and operationally useful: the top decile is target-rich.
        "top_decile_lift": report.lift_top_decile > 2.0,
        # The paper's correlation findings, visible in the weights:
        # trouble on shelf neighbours predicts this disk's failure.
        "neighbour_signal_positive": report.weights["shelf_incidents_30d"] > 0.0,
        "own_history_signal_positive": report.weights["own_incidents_30d"] > 0.0,
    }
    return ExperimentResult(
        experiment_id="predict-failures",
        title="Failure prediction from component errors",
        text="%s\n  Poisson naive Bayes baseline AUC: %.3f"
        % (report.summary(), bayes_auc),
        data={
            "auc": report.auc,
            "bayes_auc": bayes_auc,
            "precision": report.precision,
            "recall": report.recall,
            "lift_top_decile": report.lift_top_decile,
            "weights": dict(report.weights),
        },
        checks=checks,
    )
