"""Figure 9: empirical CDFs of time between failures.

Panel (a) pools gaps within each shelf enclosure, panel (b) within each
RAID group; both are overlaid with exponential/gamma/Weibull fits of
the disk-failure gaps.  Checks encode Findings 8-10: the non-disk types
are far burstier than disk failures; RAID-group failures are less
bursty than shelf failures (because groups span shelves); yet still
strongly temporally local.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.core.report import format_gap_analyses
from repro.core.timebetween import analyze_gaps, cdf_grid, figure9_series
from repro.experiments.base import ExperimentContext, ExperimentResult, register
from repro.failures.types import FailureType


def _panel(experiment_id: str, scope: str, label: str):
    title = "Time between failures, %s" % label

    @register(experiment_id, title)
    def run(context: ExperimentContext) -> ExperimentResult:
        dataset = context.dataset("paper-default")
        series = figure9_series(dataset, scope)
        disk = series[FailureType.DISK.label]
        phys = series[FailureType.PHYSICAL_INTERCONNECT.label]
        overall = series["Overall Storage Subsystem Failure"]
        fits = {fit.name: fit.log_likelihood for fit in disk.fits}

        grid_rows = cdf_grid(list(series.values()), np.geomspace(10.0, 1e8, 24))
        burst: Dict[str, float] = {
            label_: analysis.burst_fraction for label_, analysis in series.items()
        }
        checks = {
            # Finding 8: non-disk types are much burstier than disk.
            "nondisk_burstier_than_disk": all(
                series[ft.label].burst_fraction > disk.burst_fraction + 0.2
                for ft in (
                    FailureType.PHYSICAL_INTERCONNECT,
                    FailureType.PROTOCOL,
                    FailureType.PERFORMANCE,
                )
                if ft.label in series
            ),
            # The paper reads the highest temporal locality off the
            # interconnect curve (a shelf-panel statement; spanning
            # reshuffles the per-type ordering at RAID-group scope).
            "interconnect_highly_bursty": phys.burst_fraction
            > (0.55 if scope == "shelf" else 0.40),
            # Gamma fits disk gaps far better than exponential (the
            # paper: gamma is the best fit; exponential is rejected).
            "gamma_beats_exponential_for_disk": fits.get("gamma", -np.inf)
            > fits.get("exponential", np.inf) + 10.0,
            # Sub-second gaps are rare: different disks' detections
            # almost never coincide (the CDF effectively does not start
            # at the zero point, as the paper notes).
            "sub_second_gaps_rare": overall.ecdf.fraction_below(1.0) < 0.02,
        }
        if scope == "shelf":
            # Paper: ~48% of same-shelf gaps under 10^4 s.
            checks["overall_burst_near_half"] = 0.30 <= overall.burst_fraction <= 0.70
        else:
            # Paper: ~30% for RAID groups.
            checks["overall_burst_near_third"] = 0.12 <= overall.burst_fraction <= 0.50
        return ExperimentResult(
            experiment_id=experiment_id,
            title=title,
            text=format_gap_analyses("Figure 9: %s" % title, series),
            data={
                "burst_fractions": burst,
                "disk_fit_logliks": fits,
                "cdf_grid": grid_rows,
            },
            checks=checks,
        )

    return run


_panel("fig9a", "shelf", "within a shelf enclosure")
_panel("fig9b", "raid_group", "within a RAID group")


@register("fig9-compare", "Shelf vs RAID-group burstiness (Findings 9-10)")
def run_compare(context: ExperimentContext) -> ExperimentResult:
    """Direct comparison of the two panels' burstiness."""
    dataset = context.dataset("paper-default")
    shelf = analyze_gaps(dataset, "shelf", None)
    group = analyze_gaps(dataset, "raid_group", None)
    checks = {
        # Finding 9: spanning reduces burstiness.
        "raid_group_less_bursty_than_shelf": group.burst_fraction
        < shelf.burst_fraction - 0.05,
        # Finding 10: but locality remains strong.
        "raid_group_still_bursty": group.burst_fraction >= 0.12,
    }
    text = (
        "Shelf overall burst fraction:      %.1f%%\n"
        "RAID-group overall burst fraction: %.1f%%"
        % (100.0 * shelf.burst_fraction, 100.0 * group.burst_fraction)
    )
    return ExperimentResult(
        experiment_id="fig9-compare",
        title="Shelf vs RAID-group burstiness",
        text=text,
        data={
            "shelf_burst": shelf.burst_fraction,
            "raid_group_burst": group.burst_fraction,
        },
        checks=checks,
    )
