"""Figure 4: AFR per system class, broken down by failure type.

Panel (a) includes systems using the problematic Disk H family; panel
(b) excludes them.  The checks encode Findings 1 and 2: disk failures
contribute 20-55% of subsystem failures (so they do not always
dominate), physical interconnect failures contribute a large share, and
near-line systems have *worse disks* but a *better subsystem* than
low-end systems.
"""

from __future__ import annotations

from typing import Dict

from repro.core.breakdown import afr_by_class, disk_failure_share_range, row_by_label
from repro.core.report import format_breakdown
from repro.experiments.base import ExperimentContext, ExperimentResult, register
from repro.failures.types import FAILURE_TYPE_ORDER, FailureType
from repro.topology.classes import SystemClass


def _rows_data(rows) -> Dict[str, Dict[str, float]]:
    return {
        row.label: {
            **{ft.value: row.percent(ft) for ft in FAILURE_TYPE_ORDER},
            "total": row.total_percent,
        }
        for row in rows
    }


@register("fig4a", "AFR by system class, including Disk H systems")
def run_fig4a(context: ExperimentContext) -> ExperimentResult:
    """Panel (a): the whole fleet, problematic family included."""
    dataset = context.dataset("paper-default")
    rows = afr_by_class(dataset, exclude_problematic_family=False)
    excl = afr_by_class(dataset, exclude_problematic_family=True)
    # Including Disk H should not *lower* any class's disk AFR where the
    # family ships (low-end, mid-range, high-end).
    checks = {}
    for label in (SystemClass.LOW_END.label, SystemClass.MID_RANGE.label,
                  SystemClass.HIGH_END.label):
        with_h = row_by_label(rows, label)
        without_h = row_by_label(excl, label)
        if with_h is None or without_h is None:
            checks["%s_present" % label] = False
            continue
        checks["disk_h_raises_%s" % label.lower().replace("-", "_")] = (
            with_h.percent(FailureType.DISK) >= without_h.percent(FailureType.DISK)
        )
    return ExperimentResult(
        experiment_id="fig4a",
        title="AFR by system class (including Disk H)",
        text=format_breakdown("Figure 4(a): AFR by class, incl. Disk H", rows),
        data={"rows": _rows_data(rows)},
        checks=checks,
    )


@register("fig4b", "AFR by system class, excluding Disk H systems")
def run_fig4b(context: ExperimentContext) -> ExperimentResult:
    """Panel (b): the trend figure — Findings 1 and 2 live here."""
    dataset = context.dataset("paper-default")
    rows = afr_by_class(dataset, exclude_problematic_family=True)
    share = disk_failure_share_range(rows)
    nearline = row_by_label(rows, SystemClass.NEARLINE.label)
    low_end = row_by_label(rows, SystemClass.LOW_END.label)
    phys_shares = [
        row.share(FailureType.PHYSICAL_INTERCONNECT) for row in rows
    ]
    fc_disk_rates = [
        row.percent(FailureType.DISK)
        for row in rows
        if row.label != SystemClass.NEARLINE.label
    ]
    checks = {
        # Finding 1: disk failures are 20-55% of subsystem failures.
        "disk_share_within_paper_band": 0.15 <= share["min"]
        and share["max"] <= 0.60,
        "interconnect_share_substantial": min(phys_shares) >= 0.20,
        # Finding 2: near-line disks worse, near-line subsystem better.
        "nearline_disks_worse_than_lowend": nearline.percent(FailureType.DISK)
        > low_end.percent(FailureType.DISK),
        "nearline_subsystem_better_than_lowend": nearline.total_percent
        < low_end.total_percent,
        # FC disk AFR stays under ~1%, consistent with vendor specs.
        "fc_disk_afr_under_one_percent": all(r < 1.3 for r in fc_disk_rates),
        # SATA (near-line) disks fail more than FC disks.
        "sata_worse_than_fc": nearline.percent(FailureType.DISK)
        > max(fc_disk_rates),
    }
    return ExperimentResult(
        experiment_id="fig4b",
        title="AFR by system class (excluding Disk H)",
        text=format_breakdown("Figure 4(b): AFR by class, excl. Disk H", rows),
        data={"rows": _rows_data(rows), "disk_share_range": share},
        checks=checks,
    )
