"""Figure 7: single-path vs dual-path AFR (mid-range and high-end).

Checks encode Finding 7: the redundant FC network cuts physical
interconnect AFR by 50-60% and subsystem AFR by 30-40%, with little
effect on the other failure types, significant at high confidence —
and yet the dual-path rate stays far above the idealized product of two
independent networks, because backplane faults and shared physical HBAs
have no redundant path.
"""

from __future__ import annotations

from typing import Dict

from repro.core.breakdown import afr_by_path_config, row_by_label
from repro.core.report import format_breakdown
from repro.core.significance import compare_rates
from repro.experiments.base import ExperimentContext, ExperimentResult, register
from repro.failures.types import FailureType
from repro.topology.classes import SystemClass


def _panel(experiment_id: str, system_class: SystemClass):
    title = "Single vs dual path AFR: %s systems" % system_class.label

    @register(experiment_id, title)
    def run(context: ExperimentContext) -> ExperimentResult:
        dataset = context.dataset("paper-default")
        rows = afr_by_path_config(dataset, system_class)
        single = row_by_label(rows, "Single Path")
        dual = row_by_label(rows, "Dual Paths")
        comparison = compare_rates(
            dataset,
            lambda s: s.system_class is system_class and not s.dual_path,
            lambda s: s.system_class is system_class and s.dual_path,
            FailureType.PHYSICAL_INTERCONNECT,
            description="%s single vs dual path" % system_class.label,
            confidence=0.999,
        )
        phys_reduction = comparison.reduction
        total_reduction = 1.0 - dual.total_percent / single.total_percent
        # The idealized two-independent-network failure probability:
        # (single-path interconnect AFR)^2 — orders of magnitude below
        # what dual-path systems actually see.
        idealized = (single.percent(FailureType.PHYSICAL_INTERCONNECT) / 100.0) ** 2 * 100.0
        data: Dict[str, float] = {
            "single_phys": single.percent(FailureType.PHYSICAL_INTERCONNECT),
            "dual_phys": dual.percent(FailureType.PHYSICAL_INTERCONNECT),
            "phys_reduction": phys_reduction,
            "total_reduction": total_reduction,
            "idealized_dual_phys": idealized,
            "p_value": comparison.test.p_value,
        }
        checks = {
            # Finding 7's headline bands (with simulation-width slack).
            "interconnect_reduced_50_60pct": 0.35 <= phys_reduction <= 0.75,
            "subsystem_reduced_30_40pct": 0.15 <= total_reduction <= 0.55,
            "significant_at_99": comparison.significant_at(0.99),
            # Disk failures should be untouched by path redundancy.
            "disk_afr_untouched": abs(
                single.percent(FailureType.DISK) - dual.percent(FailureType.DISK)
            )
            < 0.5 * max(single.percent(FailureType.DISK), 0.2),
            # Reality stays far above the independence ideal.
            "far_above_idealized_product": dual.percent(
                FailureType.PHYSICAL_INTERCONNECT
            )
            > 5.0 * idealized,
        }
        text = "%s\n  %s\n  idealized two-network AFR: %.4f%%" % (
            format_breakdown("Figure 7: %s" % title, rows),
            comparison.summary(),
            idealized,
        )
        return ExperimentResult(
            experiment_id=experiment_id,
            title=title,
            text=text,
            data=data,
            checks=checks,
        )

    return run


_panel("fig7a", SystemClass.MID_RANGE)
_panel("fig7b", SystemClass.HIGH_END)
