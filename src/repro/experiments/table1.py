"""Table 1: overview of the studied storage systems.

Regenerates the paper's population table — per class: system, shelf,
disk (ever installed), and RAID group counts, path configuration, disk
interface, and failure-event counts per type — from the scaled
simulated fleet.
"""

from __future__ import annotations

from repro.core.report import format_overview
from repro.experiments.base import ExperimentContext, ExperimentResult, register
from repro.failures.types import FAILURE_TYPE_ORDER
from repro.topology.classes import SYSTEM_CLASS_ORDER, SystemClass


@register("table1", "Overview of studied storage systems")
def run(context: ExperimentContext) -> ExperimentResult:
    """Build the Table 1 overview and check its structural properties."""
    dataset = context.dataset("paper-default")
    fleet = dataset.fleet

    rows = {}
    for system_class in SYSTEM_CLASS_ORDER:
        systems = fleet.systems_of_class(system_class)
        if not systems:
            continue
        ids = {s.system_id for s in systems}
        counts = {ft.value: 0 for ft in FAILURE_TYPE_ORDER}
        for event in dataset.events:
            if event.system_id in ids:
                counts[event.failure_type.value] += 1
        rows[system_class.value] = {
            "systems": len(systems),
            "shelves": sum(len(s.shelves) for s in systems),
            "disks_ever": sum(s.disk_count_ever for s in systems),
            "raid_groups": sum(len(s.raid_groups) for s in systems),
            "dual_path_systems": sum(1 for s in systems if s.dual_path),
            "disk_interface": system_class.disk_interface,
            "failure_events": counts,
        }

    checks = {
        "all_four_classes_present": len(rows) == 4,
        # Table 1 structure: near-line is SATA, primaries are FC.
        "nearline_is_sata": rows.get(SystemClass.NEARLINE.value, {}).get(
            "disk_interface"
        )
        == "SATA",
        "primaries_are_fc": all(
            rows[c.value]["disk_interface"] == "FC"
            for c in SYSTEM_CLASS_ORDER
            if c is not SystemClass.NEARLINE and c.value in rows
        ),
        # Only mid/high-end support multipathing, about a third use it.
        "dual_path_only_mid_high": all(
            rows[c.value]["dual_path_systems"] == 0
            for c in (SystemClass.NEARLINE, SystemClass.LOW_END)
            if c.value in rows
        ),
        # Low-end is the most numerous class (22,031 of 39,000 systems).
        "lowend_most_numerous": rows[SystemClass.LOW_END.value]["systems"]
        == max(r["systems"] for r in rows.values()),
        # Disks ever installed exceeds bays (replacements happened).
        "replacements_recorded": fleet.disk_count_ever
        > sum(s.slot_count for s in fleet.systems),
        # Every class recorded events of all four types.
        "all_types_observed": all(
            all(count > 0 for count in row["failure_events"].values())
            for row in rows.values()
        ),
    }
    return ExperimentResult(
        experiment_id="table1",
        title="Overview of studied storage systems",
        text=format_overview(dataset),
        data={"rows": rows, "scale": context.scale},
        checks=checks,
    )
