"""Experiment: the replacement-rate vs disk-AFR discrepancy, resolved.

The paper's §3 (discussion under Finding 2) reconciles itself with the
replacement-log studies: disks get replaced 2-4x more often than vendor
AFRs because administrators replace on *observed unavailability*, and
most unavailability is not the disk's fault.  This experiment derives
the administrators' replacement log from the simulated fleet and checks
the reconciliation quantitatively: ARR / disk-AFR lands in the 2-4x
band, ARR tracks the subsystem failure rate, and the majority of
"replacements" on FC-class systems were not actually disk failures.
"""

from __future__ import annotations

from repro.adapters.replacements import (
    cause_breakdown,
    derive_replacement_log,
    replacement_rate_percent,
)
from repro.core.afr import dataset_afr
from repro.experiments.base import ExperimentContext, ExperimentResult, register
from repro.failures.types import FailureType
from repro.topology.classes import SystemClass


@register("replacement-discrepancy", "Replacement rate vs disk AFR (refs 14/16)")
def run(context: ExperimentContext) -> ExperimentResult:
    """Derive the replacement log and compare ARR against disk AFR."""
    dataset = context.dataset("paper-default").excluding_disk_family()
    records = derive_replacement_log(dataset, seed=context.seed)
    exposure = dataset.exposure_years()
    arr = replacement_rate_percent(records, exposure)
    disk_afr = dataset_afr(dataset, FailureType.DISK).percent
    subsystem_afr = dataset_afr(dataset).percent
    ratio = arr / disk_afr
    causes = cause_breakdown(records)

    # Low-end: the class where the discrepancy is starkest.
    lowend = dataset.filter_systems(
        lambda s: s.system_class is SystemClass.LOW_END
    )
    lowend_records = derive_replacement_log(lowend, seed=context.seed)
    lowend_ratio = replacement_rate_percent(
        lowend_records, lowend.exposure_years()
    ) / dataset_afr(lowend, FailureType.DISK).percent

    checks = {
        # The replacement-log studies' 2-4x discrepancy.
        "ratio_in_2_to_4_band": 1.8 <= ratio <= 4.5,
        # ARR approximates the subsystem failure rate, not disk AFR.
        "arr_tracks_subsystem_rate": abs(arr - subsystem_afr)
        < abs(arr - disk_afr),
        # Most replacements were not disk failures.
        "most_replacements_not_disk": causes.get("disk", 1.0) < 0.5,
        # The worst class shows an even larger discrepancy.
        "lowend_discrepancy_larger": lowend_ratio > ratio,
    }
    text = (
        "Replacement log vs disk AFR (excl. the problematic family)\n"
        "  annualized replacement rate (ARR): %.2f%%\n"
        "  true disk AFR:                      %.2f%%   -> ratio %.1fx\n"
        "  subsystem AFR:                      %.2f%%\n"
        "  low-end class ratio:                %.1fx\n"
        "  true causes behind replacements: %s"
        % (
            arr,
            disk_afr,
            ratio,
            subsystem_afr,
            lowend_ratio,
            ", ".join(
                "%s %.0f%%" % (key, 100 * share)
                for key, share in sorted(causes.items())
            ),
        )
    )
    return ExperimentResult(
        experiment_id="replacement-discrepancy",
        title="Replacement rate vs disk AFR (refs 14/16)",
        text=text,
        data={
            "arr": arr,
            "disk_afr": disk_afr,
            "subsystem_afr": subsystem_afr,
            "ratio": ratio,
            "lowend_ratio": lowend_ratio,
            "causes": causes,
        },
        checks=checks,
    )
