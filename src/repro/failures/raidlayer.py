"""RAID-layer propagation: which component errors become subsystem failures.

The paper counts a storage subsystem failure only when the error
propagates to the RAID layer (Fig. 3 shows the cascade: FC events, then
SCSI events, then the RAID-layer ``disk.missing`` event).  Errors that a
lower layer recovers — a successful SCSI retry, a multipath failover —
appear in the logs but produce no RAID-layer event and are not counted.

This module is the shared vocabulary between the injector (which decides
what propagates) and the log parser (which must recognize the same
cascades in text form).
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence, Tuple

from repro.failures.events import ComponentError
from repro.failures.types import FailureType

#: The lower-layer event cascade emitted ahead of each RAID-layer event,
#: per failure type: (layer, event name, seconds before the RAID event).
#: Shapes follow the paper's Fig. 3 excerpt (a physical interconnect
#: failure spans ~166 s from first FC timeout to the RAID event).
CASCADES: Mapping[FailureType, Sequence[Tuple[str, str, float]]] = {
    FailureType.PHYSICAL_INTERCONNECT: (
        ("fci", "fci.device.timeout", 166.0),
        ("fci", "fci.adapter.reset", 152.0),
        ("scsi", "scsi.cmd.abortedByHost", 152.0),
        ("scsi", "scsi.cmd.selectionTimeout", 130.0),
        ("scsi", "scsi.cmd.noMorePaths", 120.0),
    ),
    FailureType.DISK: (
        ("disk", "disk.ioMediumError", 95.0),
        ("scsi", "scsi.cmd.checkCondition", 80.0),
        ("disk", "disk.failurePredicted", 40.0),
    ),
    FailureType.PROTOCOL: (
        ("scsi", "scsi.cmd.protocolViolation", 60.0),
        ("disk", "disk.driver.incompatible", 30.0),
    ),
    FailureType.PERFORMANCE: (
        ("disk", "disk.slowIO", 240.0),
        ("scsi", "scsi.cmd.latencyWarning", 120.0),
    ),
    # Extended type: operator error surfaces as a management-layer
    # configuration event (mis-pulled drive) followed by the bus losing
    # the device, then the RAID-layer event tags it.
    FailureType.OPERATOR_ERROR: (
        ("mgmt", "mgmt.cfg.diskPulled", 45.0),
        ("scsi", "scsi.cmd.selectionTimeout", 20.0),
    ),
}

#: Terminal events of *recovered* incidents — the cascade ends at a lower
#: layer instead of reaching RAID.
RECOVERY_EVENTS: Mapping[FailureType, Tuple[str, str]] = {
    FailureType.PHYSICAL_INTERCONNECT: ("fci", "fci.path.failover"),
    FailureType.DISK: ("scsi", "scsi.cmd.retrySuccess"),
    FailureType.PROTOCOL: ("scsi", "scsi.cmd.retrySuccess"),
    FailureType.PERFORMANCE: ("disk", "disk.latencyRecovered"),
    FailureType.OPERATOR_ERROR: ("mgmt", "mgmt.cfg.diskReseated"),
}


def component_errors_for_failure(
    failure_type: FailureType, disk_id: str, raid_event_time: float
) -> Tuple[ComponentError, ...]:
    """The lower-layer error records leading up to one subsystem failure."""
    return tuple(
        ComponentError(
            time=raid_event_time - lead,
            layer=layer,
            disk_id=disk_id,
            failure_type=failure_type,
            recovered=False,
            event=event,
        )
        for layer, event, lead in CASCADES[failure_type]
    )


def component_errors_for_recovery(
    failure_type: FailureType, disk_id: str, recovery_time: float
) -> Tuple[ComponentError, ...]:
    """The error records of an incident a lower layer recovered.

    The cascade's first events appear, then the recovery event; no
    RAID-layer event follows.
    """
    prefix = CASCADES[failure_type][:2]
    errors = [
        ComponentError(
            time=recovery_time - lead,
            layer=layer,
            disk_id=disk_id,
            failure_type=failure_type,
            recovered=True,
            event=event,
        )
        for layer, event, lead in prefix
    ]
    layer, event = RECOVERY_EVENTS[failure_type]
    errors.append(
        ComponentError(
            time=recovery_time,
            layer=layer,
            disk_id=disk_id,
            failure_type=failure_type,
            recovered=True,
            event=event,
        )
    )
    return tuple(errors)


def classify_cascade(
    raid_event_name: Optional[str],
) -> Optional[FailureType]:
    """Classify an incident by its RAID-layer event (None = recovered).

    This is the paper's methodology (§2.5): the RAID layer tags events
    with the failure type it inferred from the lower-layer cascade; a
    cascade with no RAID-layer event never became a subsystem failure.
    """
    if raid_event_name is None:
        return None
    return FailureType.from_raid_event(raid_event_name)
