"""The failure injector: drives hazards and shocks over a whole fleet.

For every system the injector:

1. generates shelf-scoped shocks for each failure type (§5.2.3 mechanisms),
2. generates per-disk independent arrivals for the remaining rate share,
3. walks each disk bay in time order, applying disk failures (which
   remove the disk and install a replacement after a delay) and
   attaching non-disk failures to whichever disk occupied the bay,
4. applies multipath masking to physical interconnect faults on
   dual-path systems (masked faults become *recovered* component errors
   that never reach the RAID layer),
5. stamps every delivered failure with a detection time — the paper's
   systems scrub hourly, so detection lags occurrence by up to an hour.

The injector mutates the fleet (disk removals/replacements) so exposure
accounting downstream sees correct per-disk lifetimes.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro import obs
from repro.errors import CalibrationError
from repro.core.columns import EventTable, use_columnar
from repro.failures.backends import resolve as resolve_backend
from repro.failures.events import ComponentError, FailureEvent
from repro.failures.hazards import renewal_arrivals
from repro.failures.multipath import MultipathModel
from repro.failures.raidlayer import component_errors_for_recovery
from repro.failures.shocks import Shock, generate_shocks
from repro.failures.types import (
    ALL_FAILURE_TYPES,
    EXTENDED_FAILURE_TYPES,
    FAILURE_TYPE_ORDER,
    FailureType,
    InterconnectCause,
)
from repro.fleet import calibration, catalog
from repro.fleet.fleet import Fleet
from repro.raid.rebuild import RebuildModel
from repro.rng import RandomSource
from repro.topology.components import Disk, DiskSlot
from repro.topology.system import StorageSystem
from repro.units import SCRUB_PERIOD_SECONDS, SECONDS_PER_YEAR


@dataclasses.dataclass(frozen=True)
class InjectorConfig:
    """Tunable knobs of the failure injector.

    Attributes:
        shocks_enabled: when False, the full rate is delivered through
            independent per-disk hazards — the ablation that collapses
            Findings 8-11 back to the independence assumption.
        multipath: masking model for dual-path systems.
        detection_lag_max_seconds: scrub period; detection time is
            uniform in (occurrence, occurrence + lag].
        replacement_delay_mean_seconds: mean delay before a failed disk's
            replacement enters service.
        emit_recovered_errors: whether to record recovered (masked /
            retried) incidents as component errors for the log pipeline.
        warning_lead_mean_seconds: mean lead time by which a failure's
            precursor incidents (recovered retries on the ailing
            component) precede the failure itself — the signal the
            paper's future-work prediction algorithms would mine.
        background_error_rate_per_disk_year: rate of recovered incidents
            on perfectly healthy disks (transient noise), which is what
            makes prediction nontrivial.
        shock_params: per-type shock calibration (defaults from the
            calibration module).
        rate_multipliers: optional per-type scaling of the delivered
            rates (used by sensitivity studies; default all 1.0).
        disk_renewal_shape: gamma shape of the per-shelf disk-failure
            renewal process; 1.0 makes it an exponential (memoryless)
            process, the full-independence ablation.
        infant_mortality_factor: multiplier on the disk-failure hazard
            during each disk's first ``infant_period_seconds`` of life
            (1.0 = off, the paper-calibrated default; disk vendor
            studies — the paper's refs [4, 21] — report early-life
            failure elevation, which this knob lets users model).
        infant_period_seconds: length of the elevated-hazard period.
        hazard_backend: hazard backend spec (``"analytic"``,
            ``"trace:<path>"``, ``"fitted:<path>"``); ``None`` defers to
            ``REPRO_HAZARD_BACKEND`` and then the analytic default.
            See :mod:`repro.failures.backends`.
        operator_error_rate_per_disk_year: delivered rate of the
            extended *operator error* failure type (mis-pulled drives,
            botched maintenance); 0.0 — the default — keeps the paper's
            four-type taxonomy and every committed golden untouched.
    """

    shocks_enabled: bool = True
    disk_renewal_shape: float = calibration.DISK_RENEWAL_GAMMA_SHAPE
    infant_mortality_factor: float = 1.0
    infant_period_seconds: float = 90.0 * 86_400.0
    multipath: MultipathModel = dataclasses.field(default_factory=MultipathModel)
    detection_lag_max_seconds: float = SCRUB_PERIOD_SECONDS
    replacement_delay_mean_seconds: float = calibration.DISK_REPLACEMENT_DELAY_MEAN
    emit_recovered_errors: bool = True
    recovered_errors_per_failure: float = calibration.RECOVERED_ERRORS_PER_FAILURE
    warning_lead_mean_seconds: float = 7.0 * 86_400.0
    background_error_rate_per_disk_year: float = 0.05
    shock_params: Mapping[FailureType, calibration.ShockParams] = dataclasses.field(
        default_factory=lambda: dict(calibration.SHOCK_PARAMS)
    )
    rate_multipliers: Mapping[FailureType, float] = dataclasses.field(
        default_factory=dict
    )
    hazard_backend: Optional[str] = None
    operator_error_rate_per_disk_year: float = 0.0

    def rate_multiplier(self, failure_type: FailureType) -> float:
        """Per-type delivered-rate scaling (1.0 when unset)."""
        return self.rate_multipliers.get(failure_type, 1.0)


class InjectionResult:
    """Everything the injector produced over a fleet.

    Attributes:
        events: delivered subsystem failures, sorted by detection time
            (lazily materialized from the columnar table after a cache
            round-trip or a vectorized run).
        recovered_errors: component errors of incidents that lower layers
            recovered (masked interconnect faults, successful retries);
            these never became subsystem failures.
        fleet: the (mutated) fleet, with disk replacements applied.

    Either ``events`` (the legacy injector's dataclass list) or
    ``table`` (the vector engine's columnar output) seeds the result;
    the other representation materializes on first access.  Similarly
    ``recovered_errors`` may be an eager list or any lazy batch object
    exposing ``__len__`` and ``materialize()``.
    """

    def __init__(
        self,
        events: Optional[List[FailureEvent]] = None,
        recovered_errors: object = None,
        fleet: Optional[Fleet] = None,
        table: Optional[EventTable] = None,
    ) -> None:
        if (events is None) == (table is None):
            raise ValueError("provide exactly one of events= or table=")
        self.fleet = fleet
        self._events: Optional[List[FailureEvent]] = (
            list(events) if events is not None else None
        )
        self._table: Optional[EventTable] = table
        if recovered_errors is None:
            recovered_errors = []
        if isinstance(recovered_errors, list):
            self._recovered: Optional[List[ComponentError]] = recovered_errors
            self._recovered_batch = None
        else:
            self._recovered = None
            self._recovered_batch = recovered_errors

    @property
    def events(self) -> List[FailureEvent]:
        """The delivered failures as dataclasses."""
        if self._events is None:
            self._events = list(self._table.events())
        return self._events

    @property
    def recovered_errors(self) -> List[ComponentError]:
        """Recovered incidents as dataclasses (materialized on demand)."""
        if self._recovered is None:
            self._recovered = self._recovered_batch.materialize()
        return self._recovered

    def n_events(self) -> int:
        """Delivered failure count, without materializing dataclasses."""
        if self._table is not None:
            return len(self._table)
        return len(self._events)

    def n_recovered(self) -> int:
        """Recovered error count, without materializing dataclasses."""
        if self._recovered is not None:
            return len(self._recovered)
        return len(self._recovered_batch)

    def to_table(self) -> EventTable:
        """The delivered failures as a columnar :class:`EventTable`.

        Cached: :meth:`FailureDataset.from_injection` and the result
        cache share one table per injection.
        """
        if self._table is None:
            self._table = EventTable.from_events(self._events)
        return self._table

    def __getstate__(self) -> Dict[str, object]:
        # Pickle the columnar form; the shared table object means a
        # SimulationResult's injection and dataset cost one table.
        return {
            "table": self.to_table(),
            "recovered_errors": self.recovered_errors,
            "fleet": self.fleet,
        }

    def __setstate__(self, state: Dict[str, object]) -> None:
        self._recovered = state["recovered_errors"]
        self._recovered_batch = None
        self.fleet = state["fleet"]
        self._events = None
        self._table = None
        if "table" in state:
            self._table = state["table"]
        else:  # entry pickled before the columnar refactor
            self._events = list(state.get("events", []))

    def counts_by_type(self) -> Dict[FailureType, int]:
        """Event counts per failure type (Table 1's rightmost column).

        The paper's four types always appear; extended types (operator
        error) only when they actually produced events.
        """
        if use_columnar():
            table_counts = self.to_table().counts_by_type()
            counts = {
                failure_type: int(table_counts[code])
                for code, failure_type in enumerate(ALL_FAILURE_TYPES)
            }
        else:
            counts = {failure_type: 0 for failure_type in ALL_FAILURE_TYPES}
            for event in self.events:
                counts[event.failure_type] += 1
        for failure_type in EXTENDED_FAILURE_TYPES:
            if not counts[failure_type]:
                del counts[failure_type]
        return counts


def emit_fleet_events(result: InjectionResult) -> None:
    """Stream an injection onto the fleet event log (``--events``).

    One ``failure`` record per delivered subsystem failure, one
    ``rebuild`` record per disk failure (window length from the RAID
    rebuild model and the disk's catalog capacity), and one ``repair``
    record per replacement disk entering service — merged into
    simulation-time order so downstream consumers can stream the file
    without sorting.  Shared by the legacy and the vector injectors.
    """
    rebuild = RebuildModel()
    records: List[Dict[str, object]] = []
    for event in result.events:
        record: Dict[str, object] = {
            "type": "fleet",
            "kind": "failure",
            "t": event.detect_time,
            "occur_t": event.occur_time,
            "failure_type": event.failure_type.value,
            "disk_id": event.disk_id,
            "disk_model": event.disk_model,
            "shelf_id": event.shelf_id,
            "shelf_model": event.shelf_model,
            "raid_group_id": event.raid_group_id,
            "system_id": event.system_id,
            "system_class": event.system_class,
        }
        if event.cause is not None:
            record["cause"] = event.cause.value
        records.append(record)
        if event.failure_type is FailureType.DISK:
            try:
                capacity = catalog.disk_model(event.disk_model).capacity_gb
            except CalibrationError:
                capacity = 0  # off-catalog model: no rebuild estimate
            if capacity > 0:
                records.append(
                    {
                        "type": "fleet",
                        "kind": "rebuild",
                        "t": event.detect_time,
                        "duration_seconds": rebuild.window_seconds(capacity),
                        "disk_id": event.disk_id,
                        "shelf_id": event.shelf_id,
                        "raid_group_id": event.raid_group_id,
                        "system_id": event.system_id,
                    }
                )
    for system in result.fleet.systems:
        for slot in system.iter_slots():
            for failed, replacement in zip(slot.disks, slot.disks[1:]):
                down = replacement.install_time - (
                    failed.remove_time
                    if failed.remove_time is not None
                    else replacement.install_time
                )
                records.append(
                    {
                        "type": "fleet",
                        "kind": "repair",
                        "t": replacement.install_time,
                        "disk_id": failed.disk_id,
                        "replacement_id": replacement.disk_id,
                        "down_seconds": down,
                        "shelf_id": slot.shelf_id,
                        "raid_group_id": slot.raid_group_id,
                        "system_id": system.system_id,
                    }
                )
    records.sort(key=lambda record: record["t"])  # type: ignore[arg-type, return-value]
    obs.OBSERVER.fleet_events.emit_many(records)


class FailureInjector:
    """Generates the failure history of a fleet (see module docstring)."""

    def __init__(self, config: Optional[InjectorConfig] = None) -> None:
        self.config = config or InjectorConfig()
        self.backend = resolve_backend(self.config.hazard_backend)

    def inject(self, fleet: Fleet, random_source: RandomSource) -> InjectionResult:
        """Simulate failures over the fleet's observation window.

        The fleet is mutated: failed disks get ``remove_time`` set and
        replacement disks are installed into their bays.
        """
        events: List[FailureEvent] = []
        recovered: List[ComponentError] = []
        with obs.span("inject.fleet", systems=len(fleet.systems)):
            observing = obs.OBSERVER.registry.enabled
            for system in fleet.systems:
                rng = random_source.stream("inject", system.system_id)
                # Instrumentation, not simulation time: the per-system
                # latency metric below needs the wall clock.
                start = time.perf_counter() if observing else 0.0  # reprolint: disable=RPL002
                sys_events, sys_recovered = self._inject_system(
                    system, rng, fleet.duration_seconds
                )
                if observing:
                    obs.observe(
                        "inject.system",
                        time.perf_counter() - start,  # reprolint: disable=RPL002
                        system_class=system.system_class.value,
                    )
                events.extend(sys_events)
                recovered.extend(sys_recovered)
            with obs.span("inject.sort", events=len(events)):
                events.sort(key=lambda e: e.detect_time)
                recovered.sort(key=lambda e: e.time)
        result = InjectionResult(
            events=events, recovered_errors=recovered, fleet=fleet
        )
        if observing:
            for failure_type, n in result.counts_by_type().items():
                obs.inc("inject.events", n, failure_type=failure_type.value)
        if obs.OBSERVER.fleet_events.enabled:
            self._emit_fleet_events(result)
        return result

    def _emit_fleet_events(self, result: InjectionResult) -> None:
        emit_fleet_events(result)

    # -- per-system simulation --------------------------------------------

    def _inject_system(
        self,
        system: StorageSystem,
        rng: np.random.Generator,
        window_end: float,
    ) -> Tuple[List[FailureEvent], List[ComponentError]]:
        config = self.config
        backend = self.backend
        start = system.deploy_time
        active = backend.active_types(config)
        rates = {
            failure_type: backend.delivered_rate(
                config,
                system.system_class,
                failure_type,
                system.primary_disk_model,
                system.shelf_model,
            )
            for failure_type in active
        }

        shocks: List[Shock] = []
        use_shocks = backend.uses_shocks(config)
        if use_shocks:
            for shelf in system.shelves:
                for failure_type in active:
                    if failure_type not in config.shock_params:
                        continue  # extended types carry no shock share
                    shocks.extend(
                        generate_shocks(
                            rng,
                            failure_type,
                            shelf.shelf_id,
                            len(shelf.slots),
                            rates[failure_type],
                            config.shock_params[failure_type],
                            start,
                            window_end,
                        )
                    )

        # Interconnect shocks get a cause and a shock-level masking
        # decision: one cable fault is one failover, so all the disks it
        # afflicts are masked (or not) together.
        shock_causes: Dict[int, InterconnectCause] = {}
        shock_masked: Dict[int, bool] = {}
        for index, shock in enumerate(shocks):
            if shock.failure_type is FailureType.PHYSICAL_INTERCONNECT:
                cause = self._sample_cause(rng)
                shock_causes[index] = cause
                shock_masked[index] = config.multipath.masks(
                    rng, system.dual_path, cause
                )

        # Candidate failure times per bay, per type.  A candidate is
        # (time, cause, masked) — cause/masked only used for interconnect.
        Candidate = Tuple[float, Optional[InterconnectCause], bool]
        candidates: Dict[Tuple[str, FailureType], List[Candidate]] = {}

        shelf_slot_index = {
            shelf.shelf_id: shelf.slots for shelf in system.shelves
        }
        for index, shock in enumerate(shocks):
            slots = shelf_slot_index[shock.shelf_id]
            for slot_pos, delay in zip(shock.hit_slots, shock.spread_delays):
                time = shock.time + delay
                if time >= window_end:
                    continue
                key = (slots[slot_pos].slot_key, shock.failure_type)
                candidates.setdefault(key, []).append(
                    (
                        time,
                        shock_causes.get(index),
                        shock_masked.get(index, False),
                    )
                )

        shock_share = {
            failure_type: (
                config.shock_params[failure_type].rho
                if use_shocks and failure_type in config.shock_params
                else 0.0
            )
            for failure_type in active
        }
        slots = list(system.iter_slots())
        span = window_end - start
        for failure_type in active:
            indep_rate = rates[failure_type] * (1.0 - shock_share[failure_type])
            if indep_rate <= 0.0 or span <= 0.0:
                continue
            if backend.uses_renewal(config, failure_type):
                # Renewal-delivered types: one backend hazard per shelf
                # at the shelf's pooled rate, each arrival landing on a
                # random bay.  Under the analytic backend only disk
                # failures take this path — a mildly clustered gamma
                # renewal (shared thermal environment, §5.2.3), which is
                # what makes gamma the best Fig. 9 disk fit (Finding 8).
                for shelf in system.shelves:
                    if not shelf.slots:
                        continue
                    shelf_rate = indep_rate * len(shelf.slots)
                    hazard = backend.hazard(
                        config,
                        failure_type,
                        1.0 / shelf_rate,
                        system.system_class,
                    )
                    # Warm the process up to stationarity: an ordinary
                    # renewal process with clustered gaps over-delivers
                    # early (E[N(t)] ~ t/mean + (1/shape - 1)/2), which
                    # would silently inflate the delivered AFR.
                    warmup = 20.0 * hazard.mean
                    for time in renewal_arrivals(
                        rng, hazard, start - warmup, window_end
                    ):
                        if time < start:
                            continue
                        slot = shelf.slots[int(rng.integers(0, len(shelf.slots)))]
                        cause = None
                        masked = False
                        if failure_type is FailureType.PHYSICAL_INTERCONNECT:
                            cause = self._sample_cause(rng)
                            masked = config.multipath.masks(
                                rng, system.dual_path, cause
                            )
                        key = (slot.slot_key, failure_type)
                        candidates.setdefault(key, []).append(
                            (float(time), cause, masked)
                        )
                continue
            # Other types: vectorized per-system draw — one Poisson count
            # per bay, then uniform placement (an exact per-bay Poisson
            # process).
            counts = rng.poisson(indep_rate * span, size=len(slots))
            for slot, count in zip(slots, counts):
                if count == 0:
                    continue
                times = start + rng.random(int(count)) * span
                for time in times:
                    cause = None
                    masked = False
                    if failure_type is FailureType.PHYSICAL_INTERCONNECT:
                        cause = self._sample_cause(rng)
                        masked = config.multipath.masks(rng, system.dual_path, cause)
                    key = (slot.slot_key, failure_type)
                    candidates.setdefault(key, []).append((float(time), cause, masked))

        events: List[FailureEvent] = []
        recovered: List[ComponentError] = []

        # Disk failures first: they change which disk occupies a bay.
        for slot in system.iter_slots():
            disk_candidates = candidates.get((slot.slot_key, FailureType.DISK), [])
            events.extend(
                self._apply_disk_failures(
                    system,
                    slot,
                    sorted(disk_candidates),
                    rng,
                    window_end,
                    rates[FailureType.DISK],
                )
            )

        # Non-disk failures attach to whichever disk occupied the bay.
        for slot in system.iter_slots():
            for failure_type in active:
                if failure_type is FailureType.DISK:
                    continue
                for time, cause, masked in sorted(
                    candidates.get((slot.slot_key, failure_type), [])
                ):
                    disk = slot.disk_at(time)
                    if disk is None:
                        continue  # bay empty during a replacement gap
                    if masked:
                        if config.emit_recovered_errors:
                            recovered.extend(
                                component_errors_for_recovery(
                                    failure_type, disk.disk_id, time
                                )
                            )
                        continue
                    event = self._make_event(
                        system, slot, disk, failure_type, time, rng, window_end, cause
                    )
                    if event is not None:
                        events.append(event)

        if config.emit_recovered_errors:
            recovered.extend(self._retry_noise(system, events, rng, window_end))
        return events, recovered

    def _infant_failure_time(
        self,
        disk: Optional[Disk],
        rng: np.random.Generator,
        disk_rate: float,
        window_end: float,
    ) -> Optional[float]:
        """Extra early-life failure candidate for a freshly installed disk.

        With factor f > 1 the disk's hazard during its infant period is
        f x the base rate; the extra (f - 1) x base share is delivered
        here as at most one candidate inside the period.
        """
        factor = self.config.infant_mortality_factor
        if disk is None or factor <= 1.0 or disk_rate <= 0.0:
            return None
        extra_rate = (factor - 1.0) * disk_rate
        time = disk.install_time + float(rng.exponential(1.0 / extra_rate))
        cutoff = min(
            disk.install_time + self.config.infant_period_seconds, window_end
        )
        return time if time < cutoff else None

    def _apply_disk_failures(
        self,
        system: StorageSystem,
        slot: DiskSlot,
        disk_candidates: List[Tuple[float, Optional[InterconnectCause], bool]],
        rng: np.random.Generator,
        window_end: float,
        disk_rate: float,
    ) -> List[FailureEvent]:
        """Walk one bay in time order, failing and replacing disks."""
        config = self.config
        events: List[FailureEvent] = []
        current = slot.disks[-1] if slot.disks else None
        infant = self._infant_failure_time(current, rng, disk_rate, window_end)
        index = 0
        while current is not None and current.remove_time is None:
            regular = (
                disk_candidates[index][0]
                if index < len(disk_candidates)
                else None
            )
            if regular is None and infant is None:
                break
            if infant is not None and (regular is None or infant < regular):
                time = infant
                infant = None
            else:
                time = regular
                index += 1
            if time < current.install_time:
                continue  # candidate fell into the replacement gap
            detect = time + rng.uniform(0.0, config.detection_lag_max_seconds)
            if detect >= window_end:
                break  # failure not observed inside the study window
            current.remove_time = detect
            events.append(
                FailureEvent(
                    occur_time=time,
                    detect_time=detect,
                    failure_type=FailureType.DISK,
                    disk_id=current.disk_id,
                    shelf_id=current.shelf_id,
                    raid_group_id=slot.raid_group_id,
                    system_id=system.system_id,
                    system_class=system.system_class.value,
                    disk_model=current.model,
                    shelf_model=system.shelf_model,
                    dual_path=system.dual_path,
                    replaced_disk=True,
                )
            )
            install_time = detect + rng.exponential(
                config.replacement_delay_mean_seconds
            )
            if install_time >= window_end:
                break
            replacement = Disk(
                disk_id="%s#%d" % (slot.slot_key, len(slot.disks)),
                model=current.model,
                system_id=system.system_id,
                shelf_id=slot.shelf_id,
                slot_index=slot.slot_index,
                raid_group_id=slot.raid_group_id,
                install_time=install_time,
                serial="S%08X" % int(rng.integers(0, 2**32)),
            )
            slot.install(replacement)
            current = replacement
            infant = self._infant_failure_time(
                current, rng, disk_rate, window_end
            )
        return events

    def _make_event(
        self,
        system: StorageSystem,
        slot: DiskSlot,
        disk: Disk,
        failure_type: FailureType,
        time: float,
        rng: np.random.Generator,
        window_end: float,
        cause: Optional[InterconnectCause],
    ) -> Optional[FailureEvent]:
        detect = time + rng.uniform(0.0, self.config.detection_lag_max_seconds)
        if detect >= window_end or detect >= (disk.remove_time or float("inf")):
            return None
        return FailureEvent(
            occur_time=time,
            detect_time=detect,
            failure_type=failure_type,
            disk_id=disk.disk_id,
            shelf_id=disk.shelf_id,
            raid_group_id=slot.raid_group_id,
            system_id=system.system_id,
            system_class=system.system_class.value,
            disk_model=disk.model,
            shelf_model=system.shelf_model,
            dual_path=system.dual_path,
            cause=cause,
        )

    def _retry_noise(
        self,
        system: StorageSystem,
        events: List[FailureEvent],
        rng: np.random.Generator,
        window_end: float,
    ) -> List[ComponentError]:
        """Recovered retry incidents: log noise that never reached RAID.

        Two populations, mirroring what real support logs contain:

        - **precursors** — ailing components emit recovered incidents in
          the days *before* their failure (the paper's §7 future work —
          failure prediction from component errors — depends on exactly
          this structure);
        - **background** — healthy disks occasionally log transient,
          meaningless recovered incidents.
        """
        noise: List[ComponentError] = []
        lead_mean = self.config.warning_lead_mean_seconds
        for event in events:
            extra = rng.poisson(self.config.recovered_errors_per_failure)
            for _ in range(int(extra)):
                time = event.occur_time - float(rng.exponential(lead_mean))
                if time <= system.deploy_time:
                    continue  # precursor would predate deployment
                noise.extend(
                    component_errors_for_recovery(
                        event.failure_type, event.disk_id, time
                    )
                )
        background_rate = (
            self.config.background_error_rate_per_disk_year / SECONDS_PER_YEAR
        )
        if background_rate > 0.0:
            for slot in system.iter_slots():
                for disk in slot.disks:
                    end = (
                        disk.remove_time
                        if disk.remove_time is not None
                        else window_end
                    )
                    span = end - disk.install_time
                    if span <= 0.0:
                        continue
                    for _ in range(int(rng.poisson(background_rate * span))):
                        time = disk.install_time + float(rng.uniform(0.0, span))
                        failure_type = FAILURE_TYPE_ORDER[
                            int(rng.integers(0, len(FAILURE_TYPE_ORDER)))
                        ]
                        noise.extend(
                            component_errors_for_recovery(
                                failure_type, disk.disk_id, time
                            )
                        )
        return noise

    def _sample_cause(self, rng: np.random.Generator) -> InterconnectCause:
        """Draw an interconnect sub-cause from the calibrated mix."""
        roll = rng.random()
        acc = 0.0
        for cause, share in calibration.INTERCONNECT_CAUSE_MIX.items():
            acc += share
            if roll < acc:
                return cause
        return InterconnectCause.BACKPLANE
