"""The paper's four storage subsystem failure categories (§2.3).

Failures are partitioned along the I/O request path:

- **disk** — failure mechanisms internal to the disk (media defects,
  rotational vibration, proactive fail-out after excessive sector errors).
- **physical interconnect** — errors in the networks connecting disks to
  storage heads (HBA failures, broken cables, shelf power outage, shelf
  backplane errors, shelf FC driver errors); affected disks appear missing.
- **protocol** — protocol incompatibility or software bugs in disk drivers
  / shelf firmware; disks are visible but requests are not answered
  correctly.
- **performance** — disks visible and answering, but too slowly, with none
  of the other three types detected.

Beyond the paper's taxonomy, the repo models one *extended* category —
**operator error** (mis-pulled drives, wrong-slot reinsertions, botched
firmware pushes), motivated by Kishani et al.'s human-error availability
study.  Extended types ride the same event pipeline but are excluded
from :data:`FAILURE_TYPE_ORDER` so the paper's four-way presentation
(and every committed golden derived from it) is untouched unless an
operator-error hazard is actually configured; analyses that must cover
every *storable* type iterate :data:`ALL_FAILURE_TYPES` instead.
"""

from __future__ import annotations

import enum


class FailureType(enum.Enum):
    """One of the four storage subsystem failure categories."""

    DISK = "disk"
    PHYSICAL_INTERCONNECT = "physical_interconnect"
    PROTOCOL = "protocol"
    PERFORMANCE = "performance"
    OPERATOR_ERROR = "operator_error"

    @property
    def label(self) -> str:
        """Human-readable label as used in the paper's figures."""
        return _LABELS[self]

    @property
    def raid_event(self) -> str:
        """The RAID-layer log event name that tags this failure type."""
        return _RAID_EVENTS[self]

    @classmethod
    def from_raid_event(cls, event: str) -> "FailureType":
        """Map a RAID-layer event name back to its failure type."""
        try:
            return _RAID_EVENTS_INVERSE[event]
        except KeyError:
            raise ValueError("unknown RAID-layer event %r" % event) from None

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.label


_LABELS = {
    FailureType.DISK: "Disk Failure",
    FailureType.PHYSICAL_INTERCONNECT: "Physical Interconnect Failure",
    FailureType.PROTOCOL: "Protocol Failure",
    FailureType.PERFORMANCE: "Performance Failure",
    FailureType.OPERATOR_ERROR: "Operator Error",
}

#: RAID-layer event tags, modeled on the log excerpt in the paper's Fig. 3
#: (``raid.config.filesystem.disk.missing`` marks a physical interconnect
#: failure).  The other three names follow the same naming convention.
_RAID_EVENTS = {
    FailureType.DISK: "raid.disk.failed",
    FailureType.PHYSICAL_INTERCONNECT: "raid.config.filesystem.disk.missing",
    FailureType.PROTOCOL: "raid.disk.ioerror",
    FailureType.PERFORMANCE: "raid.disk.timeout.slow",
    FailureType.OPERATOR_ERROR: "raid.disk.operator.error",
}
_RAID_EVENTS_INVERSE = {name: ftype for ftype, name in _RAID_EVENTS.items()}

#: Deterministic presentation/iteration order (the paper's stacking order).
#: Deliberately the paper's FOUR types: everything rendered
#: unconditionally — report tables, figure series, noise-type draws —
#: iterates this tuple, so default-backend output is independent of any
#: extended types the codebase also knows about.
FAILURE_TYPE_ORDER = (
    FailureType.DISK,
    FailureType.PHYSICAL_INTERCONNECT,
    FailureType.PROTOCOL,
    FailureType.PERFORMANCE,
)

#: Types beyond the paper's taxonomy, present in output only when their
#: hazard is configured (e.g. ``operator_error_rate_per_disk_year > 0``).
EXTENDED_FAILURE_TYPES = (FailureType.OPERATOR_ERROR,)

#: Storage/code order: the full set of types an :class:`EventTable` can
#: hold.  Type codes index into this tuple, so it must only ever be
#: APPENDED to — reordering would corrupt persisted columnar stores.
ALL_FAILURE_TYPES = FAILURE_TYPE_ORDER + EXTENDED_FAILURE_TYPES


class InterconnectCause(enum.Enum):
    """Sub-cause of a physical interconnect failure.

    The distinction matters for multipathing (§4.3): a redundant FC network
    masks failures of the *network path* (cables, switches, one HBA port),
    but cannot mask shelf backplane or shelf power faults, which is one
    reason dual-path AFR does not drop to the idealized product of two
    independent networks.
    """

    NETWORK_PATH = "network_path"  #: cable / FC loop / HBA port — maskable
    BACKPLANE = "backplane"  #: shelf backplane or power — not maskable
    SHARED_HBA = "shared_hba"  #: both "logical" adapters on one physical HBA

    @property
    def maskable_by_multipath(self) -> bool:
        """Whether a second independent FC network can tolerate this cause."""
        return self is InterconnectCause.NETWORK_PATH
