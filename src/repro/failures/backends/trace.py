"""Trace-replay hazard backend: empirical inter-arrival resampling.

``trace:<path>`` replays the inter-arrival *shape* of a recorded
failure history.  Two source formats, auto-detected:

- a fleet-event **JSONL** log (what ``repro run --events`` writes):
  records with ``kind == "failure"`` contribute their occurrence time,
  failure type, and system class;
- a columnar **event table** (``.npz``, written by
  :func:`repro.core.colstore.save_table`).

For every (system class, failure type) — falling back to the fleet-wide
per-type pool when a class has too few events — the backend extracts
the sorted inter-failure gaps, normalizes them to unit mean, and
resamples them (a nonparametric bootstrap) scaled to each simulated
process's target mean gap.  Rates therefore stay calibrated; only the
gap *distribution* — burstiness included — comes from the trace, so
shocks are disabled (the trace already embeds its source fleet's
correlations, §5.2.3).
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Dict, Optional, Tuple

import numpy as np

from repro.errors import SpecificationError
from repro.failures.backends import Hazard, HazardBackend
from repro.failures.types import ALL_FAILURE_TYPES, FailureType

#: Gaps below which a pool is unusable and the fallback chain applies.
MIN_POOL_GAPS = 4


class ExponentialHazard(Hazard):
    """Memoryless fallback for types the trace never recorded."""

    def __init__(self, mean_seconds: float) -> None:
        self.mean_seconds = mean_seconds

    def sample_interarrivals(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return rng.exponential(self.mean_seconds, size=n)

    @property
    def mean(self) -> float:
        return self.mean_seconds


class EmpiricalHazard(Hazard):
    """Bootstrap resampling of a unit-mean gap pool, rescaled.

    The pool is shared (one array per trace pool); instances only carry
    the target mean, so per-shelf construction is allocation-free.
    """

    def __init__(self, pool: "GapPool", mean_seconds: float) -> None:
        self.pool = pool
        self.mean_seconds = mean_seconds

    def sample_interarrivals(self, rng: np.random.Generator, n: int) -> np.ndarray:
        picks = rng.integers(0, self.pool.gaps.size, size=n)
        return self.pool.gaps[picks] * self.mean_seconds

    def equilibrium_delay(self, rng: np.random.Generator, n: int) -> np.ndarray:
        # Exact stationary start for the empirical distribution: pick a
        # gap length-biased (probability proportional to its length),
        # then a uniform position inside it.
        rolls = rng.random(n) * self.pool.length_cumsum[-1]
        picks = np.searchsorted(self.pool.length_cumsum, rolls, side="right")
        picks = np.minimum(picks, self.pool.gaps.size - 1)
        return rng.random(n) * self.pool.gaps[picks] * self.mean_seconds

    @property
    def mean(self) -> float:
        return self.mean_seconds


class GapPool:
    """One trace pool: unit-mean gaps plus the length-biased cumsum."""

    def __init__(self, gaps: np.ndarray) -> None:
        gaps = np.asarray(gaps, dtype=np.float64)
        self.gaps = gaps / float(gaps.mean())
        self.length_cumsum = np.cumsum(self.gaps)


def _file_digest(path: str) -> str:
    if not os.path.exists(path):
        raise SpecificationError("trace file not found: %s" % path)
    digest = hashlib.sha256()
    try:
        with open(path, "rb") as handle:
            for chunk in iter(lambda: handle.read(1 << 20), b""):
                digest.update(chunk)
    except OSError as exc:
        raise SpecificationError(
            "trace file %s is unreadable: %s" % (path, exc)
        )
    return digest.hexdigest()[:12]


def load_failure_times(
    path: str,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Failure records of a trace file as parallel arrays.

    Returns:
        ``(times, type_values, class_values)`` — occurrence time,
        failure-type value string, and system-class value string (empty
        when the record carries none) per failure.
    """
    if not os.path.exists(path):
        raise SpecificationError("trace file not found: %s" % path)
    if path.endswith(".npz"):
        import zipfile

        from repro.core.colstore import load_table

        try:
            table = load_table(path, mmap=False)
            types = np.asarray(
                [ALL_FAILURE_TYPES[code].value for code in table.type_codes]
            )
            classes = np.asarray(
                [
                    table.system_classes.values[code]
                    for code in table.class_codes
                ]
            )
        except (
            OSError,
            KeyError,
            ValueError,
            IndexError,
            zipfile.BadZipFile,
        ) as exc:
            raise SpecificationError(
                "trace %s is not a readable event table: %s" % (path, exc)
            )
        return np.asarray(table.occur_time, dtype=np.float64), types, classes
    times = []
    types_list = []
    classes_list = []
    try:
        with open(path, "r", encoding="utf-8") as handle:
            for lineno, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError as exc:
                    raise SpecificationError(
                        "trace %s line %d is not valid JSON: %s"
                        % (path, lineno, exc)
                    )
                if not isinstance(record, dict):
                    raise SpecificationError(
                        "trace %s line %d is not a JSON object"
                        % (path, lineno)
                    )
                if record.get("kind", "failure") != "failure":
                    continue
                if "failure_type" not in record:
                    continue
                time = record.get("occur_t", record.get("t"))
                if time is None:
                    continue
                try:
                    times.append(float(time))
                except (TypeError, ValueError):
                    raise SpecificationError(
                        "trace %s line %d has a non-numeric time %r"
                        % (path, lineno, time)
                    )
                types_list.append(str(record["failure_type"]))
                classes_list.append(str(record.get("system_class", "")))
    except (OSError, UnicodeDecodeError) as exc:
        raise SpecificationError(
            "trace file %s is unreadable: %s" % (path, exc)
        )
    if not times:
        raise SpecificationError("trace %s holds no failure records" % path)
    return (
        np.asarray(times, dtype=np.float64),
        np.asarray(types_list),
        np.asarray(classes_list),
    )


def build_gap_pools(
    times: np.ndarray, types: np.ndarray, classes: np.ndarray
) -> Dict[Tuple[Optional[str], str], GapPool]:
    """Inter-arrival pools keyed by (class value or None, type value).

    The ``None``-class entry is the fleet-wide per-type pool, the
    fallback when a class recorded too few events of a type.
    """
    pools: Dict[Tuple[Optional[str], str], GapPool] = {}
    for type_value in np.unique(types):
        type_mask = types == type_value
        keys = [(None, str(type_value))] + [
            (str(class_value), str(type_value))
            for class_value in np.unique(classes[type_mask])
            if class_value
        ]
        for class_value, tv in keys:
            mask = type_mask
            if class_value is not None:
                mask = type_mask & (classes == class_value)
            sorted_times = np.sort(times[mask])
            gaps = np.diff(sorted_times)
            gaps = gaps[gaps > 0.0]
            if gaps.size >= MIN_POOL_GAPS:
                pools[(class_value, tv)] = GapPool(gaps)
    return pools


class TraceBackend(HazardBackend):
    """Replay a recorded trace's inter-arrival shapes (module docstring)."""

    name = "trace"

    def __init__(self, path: str) -> None:
        self.path = path
        self._token = "trace:%s" % _file_digest(path)
        self.pools = build_gap_pools(*load_failure_times(path))

    def cache_token(self) -> str:
        return self._token

    def uses_shocks(self, config) -> bool:
        return False

    def uses_renewal(self, config, failure_type: FailureType) -> bool:
        return True

    def hazard(
        self,
        config,
        failure_type: FailureType,
        mean_seconds: float,
        system_class=None,
    ) -> Hazard:
        if system_class is not None:
            pool = self.pools.get((system_class.value, failure_type.value))
            if pool is not None:
                return EmpiricalHazard(pool, mean_seconds)
        pool = self.pools.get((None, failure_type.value))
        if pool is not None:
            return EmpiricalHazard(pool, mean_seconds)
        return ExponentialHazard(mean_seconds)
