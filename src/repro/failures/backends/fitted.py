"""Fitted hazard backend: re-simulate from MLE fits of a trace.

``fitted:<path>`` reads the same trace formats as the trace backend,
but instead of bootstrap-resampling the raw gaps it fits the candidate
families of :mod:`repro.stats.mle` — exponential, gamma, Weibull, and
piecewise exponential — to each failure type's fleet-wide inter-arrival
sample, keeps the best fit by AIC, and samples *from the fitted
distribution*, rescaled to each simulated process's target mean.  This
is the Fig. 9 methodology run in reverse: where the paper fits
distributions to observed gaps, this backend closes the loop by
re-simulating from those fits.

:meth:`FittedBackend.ks_gate` guards the loop: it re-simulates an
inter-arrival sample from the chosen fit and two-sample-KS-tests it
against the source gaps; re-simulation that cannot reproduce the
observed Fig. 9 CDF at ``alpha = 0.01`` fails the gate.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, List, Optional

import numpy as np
from scipy import stats as scipy_stats

from repro.failures.backends import Hazard, HazardBackend
from repro.failures.backends.trace import (
    ExponentialHazard,
    _file_digest,
    load_failure_times,
)
from repro.failures.types import FailureType
from repro.stats import mle

#: Observations below which a type keeps the exponential fallback
#: rather than trusting a parametric fit.
MIN_FIT_OBSERVATIONS = 16


def _piecewise_mean(params: Dict[str, float]) -> float:
    """Mean of a piecewise-exponential distribution: integral of S(t)."""
    edges, rates = mle._piecewise_edges_rates(params)
    mean = 0.0
    survival = 1.0
    for j in range(len(rates) - 1):
        dt = edges[j + 1] - edges[j]
        mean += survival * (1.0 - math.exp(-rates[j] * dt)) / rates[j]
        survival *= math.exp(-rates[j] * dt)
    mean += survival / rates[-1]
    return mean


def fitted_mean(fit: mle.FitResult) -> float:
    """The fitted distribution's own mean (before target rescaling)."""
    if fit.name == "exponential":
        return 1.0 / fit.params["rate"]
    if fit.name == "gamma":
        return fit.params["shape"] * fit.params["scale"]
    if fit.name == "weibull":
        return fit.params["scale"] * math.gamma(
            1.0 + 1.0 / fit.params["shape"]
        )
    return _piecewise_mean(fit.params)


class FittedHazard(Hazard):
    """Samples a fitted family, rescaled to a target mean gap."""

    def __init__(self, fit: mle.FitResult, mean_seconds: float) -> None:
        self.fit = fit
        self.mean_seconds = mean_seconds
        self._ratio = mean_seconds / fitted_mean(fit)
        if fit.name == "piecewise_exponential":
            edges, rates = mle._piecewise_edges_rates(fit.params)
            self._edges = edges
            self._rates = rates
            # Cumulative hazard at each interval's left edge.
            self._base = np.concatenate(
                ([0.0], np.cumsum(rates[:-1] * np.diff(edges)))
            )

    def sample_interarrivals(self, rng: np.random.Generator, n: int) -> np.ndarray:
        params = self.fit.params
        if self.fit.name == "exponential":
            draws = rng.exponential(1.0 / params["rate"], size=n)
        elif self.fit.name == "gamma":
            draws = rng.gamma(params["shape"], params["scale"], size=n)
        elif self.fit.name == "weibull":
            draws = params["scale"] * rng.weibull(params["shape"], size=n)
        else:
            # Inverse-CDF via the cumulative hazard: H(T) ~ Exp(1).
            exponents = rng.exponential(1.0, size=n)
            index = np.searchsorted(self._base, exponents, side="right") - 1
            index = np.clip(index, 0, len(self._rates) - 1)
            draws = self._edges[index] + (
                exponents - self._base[index]
            ) / self._rates[index]
        return draws * self._ratio

    @property
    def mean(self) -> float:
        return self.mean_seconds


@dataclasses.dataclass(frozen=True)
class KSGateResult:
    """Outcome of the re-simulation KS gate for one failure type.

    Attributes:
        failure_type: the gated type's value string.
        family: the fitted family re-simulated from.
        statistic / p_value: two-sample KS of re-simulated vs source
            inter-arrivals.
        alpha: the gate's significance level.
    """

    failure_type: str
    family: str
    statistic: float
    p_value: float
    alpha: float

    @property
    def passed(self) -> bool:
        """True when re-simulation is indistinguishable at ``alpha``."""
        return self.p_value >= self.alpha


class FittedBackend(HazardBackend):
    """Best-AIC parametric re-simulation of a trace (module docstring)."""

    name = "fitted"

    def __init__(self, path: str) -> None:
        self.path = path
        self._token = "fitted:%s" % _file_digest(path)
        times, types, _classes = load_failure_times(path)
        self.gaps: Dict[str, np.ndarray] = {}
        self.fits: Dict[str, mle.FitResult] = {}
        self.fit_errors: Dict[str, List[mle.FitError]] = {}
        for type_value in np.unique(types):
            sorted_times = np.sort(times[types == type_value])
            gaps = np.diff(sorted_times)
            gaps = gaps[gaps > 0.0]
            key = str(type_value)
            self.gaps[key] = gaps
            if gaps.size < MIN_FIT_OBSERVATIONS:
                self.fit_errors[key] = [
                    mle.FitError(
                        name="*",
                        reason="need >= %d gaps, got %d"
                        % (MIN_FIT_OBSERVATIONS, gaps.size),
                        n=int(gaps.size),
                    )
                ]
                continue
            fits, errors = mle.safe_fit_all(gaps)
            self.fit_errors[key] = errors
            if fits:
                self.fits[key] = min(fits, key=lambda fit: fit.aic)

    def cache_token(self) -> str:
        return self._token

    def uses_shocks(self, config) -> bool:
        return False

    def uses_renewal(self, config, failure_type: FailureType) -> bool:
        return True

    def hazard(
        self,
        config,
        failure_type: FailureType,
        mean_seconds: float,
        system_class=None,
    ) -> Hazard:
        fit = self.fits.get(failure_type.value)
        if fit is None:
            return ExponentialHazard(mean_seconds)
        return FittedHazard(fit, mean_seconds)

    def ks_gate(
        self,
        failure_type: FailureType,
        alpha: float = 0.01,
        seed: int = 0,
    ) -> Optional[KSGateResult]:
        """Re-simulate the type's fit and KS-test it against the source.

        Returns None when the type has no parametric fit (the
        exponential fallback is not gated).
        """
        fit = self.fits.get(failure_type.value)
        if fit is None:
            return None
        source = self.gaps[failure_type.value]
        hazard = FittedHazard(fit, float(source.mean()))
        rng = np.random.default_rng(seed)
        simulated = hazard.sample_interarrivals(rng, max(source.size, 512))
        statistic, p_value = scipy_stats.ks_2samp(source, simulated)
        return KSGateResult(
            failure_type=failure_type.value,
            family=fit.name,
            statistic=float(statistic),
            p_value=float(p_value),
            alpha=alpha,
        )
