"""The default analytic backend: the calibrated paper failure model.

Exactly the hazard structure both engines used before backends existed:

- **disk** — the non-shock share is a gamma renewal process per shelf
  (shape :data:`repro.fleet.calibration.DISK_RENEWAL_GAMMA_SHAPE`),
  the clustering that makes gamma the best Fig. 9 fit (Finding 8);
- **all other types** — exact homogeneous Poisson processes per bay
  (``hazard() is None`` routes them through the engines' native
  order-statistics construction);
- **shocks** — enabled per ``config.shocks_enabled``, untouched.

The dispatch is draw-for-draw identical to the pre-backend engines:
``tests/goldens/hazard_backend_goldens.json`` pins the outputs of both
engines under this backend byte-for-byte across three seeds.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.failures.backends import Hazard, HazardBackend
from repro.failures.hazards import GammaInterarrival
from repro.failures.types import FailureType


class AnalyticGammaHazard(Hazard):
    """A gamma renewal hazard with the exact stationary-start draws.

    Wraps :class:`repro.failures.hazards.GammaInterarrival`; the
    equilibrium delay override reproduces the vector engine's original
    draw sequence — a Gamma(shape+1) length-biased gap, then a uniform
    fraction of it — bit-for-bit.
    """

    def __init__(self, interarrival: GammaInterarrival) -> None:
        self.interarrival = interarrival

    def sample_interarrivals(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return self.interarrival.sample(rng, n)

    def equilibrium_delay(self, rng: np.random.Generator, n: int) -> np.ndarray:
        length_biased = rng.gamma(
            self.interarrival.shape + 1.0,
            self.interarrival.scale_seconds,
            size=n,
        )
        return rng.random(n) * length_biased

    @property
    def mean(self) -> float:
        return self.interarrival.mean


class AnalyticBackend(HazardBackend):
    """The calibrated exponential/gamma model (module docstring)."""

    name = "analytic"

    def uses_renewal(self, config, failure_type: FailureType) -> bool:
        return failure_type is FailureType.DISK

    def hazard(
        self,
        config,
        failure_type: FailureType,
        mean_seconds: float,
        system_class=None,
    ) -> Optional[Hazard]:
        if failure_type is FailureType.DISK:
            return AnalyticGammaHazard(
                GammaInterarrival.from_mean(
                    config.disk_renewal_shape, mean_seconds
                )
            )
        return None
