"""Pluggable hazard backends: one sampling contract for both engines.

A :class:`HazardBackend` answers, for any failure type, two questions
the injectors otherwise hard-code:

1. *how fast* — :meth:`HazardBackend.delivered_rate`, the delivered
   failure rate (events per disk-second) of one fleet configuration;
2. *in what pattern* — :meth:`HazardBackend.hazard`, an inter-arrival
   :class:`Hazard` sampler (or ``None`` for an exact homogeneous
   Poisson process, which both engines implement natively via the
   order-statistics construction).

Both the legacy per-system injector
(:class:`repro.failures.injector.FailureInjector`) and the batched
vector engine (:mod:`repro.simulate.vector`) dispatch every hazard draw
through the same backend object, so a new failure-time model is written
once and runs on either engine.  Three backends ship:

- :mod:`~repro.failures.backends.analytic` — the calibrated
  exponential/gamma model the paper's figures are built on (the
  default; byte-identical to the pre-backend engines).
- :mod:`~repro.failures.backends.trace` — replay the inter-arrival
  *shape* of a recorded failure trace (JSONL fleet-event log or a
  columnar ``.npz`` event table), rescaled to the calibrated rates.
- :mod:`~repro.failures.backends.fitted` — fit parametric families
  (exponential / gamma / Weibull / piecewise exponential, via
  :mod:`repro.stats.mle`) to an observed trace and re-simulate from
  the best fit, with a KS gate against the source inter-arrivals.

Backends are selected by a spec string — ``"analytic"``,
``"trace:<path>"``, ``"fitted:<path>"`` — carried on
:attr:`repro.failures.injector.InjectorConfig.hazard_backend`, the
``repro run --hazard-backend`` flag, or ``REPRO_HAZARD_BACKEND``.

The *extended* operator-error failure type also enters here: every
backend activates :data:`~repro.failures.types.FailureType.OPERATOR_ERROR`
when ``config.operator_error_rate_per_disk_year`` is positive, feeding a
fifth type through injection, availability, and AFR analyses without
touching the paper's four-way presentation when it is off.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro import envvars
from repro.errors import SpecificationError
from repro.failures.types import (
    EXTENDED_FAILURE_TYPES,
    FAILURE_TYPE_ORDER,
    FailureType,
)
from repro.fleet import calibration
from repro.units import SECONDS_PER_YEAR, afr_percent_to_rate_per_second

#: Environment variable selecting the default hazard backend.
HAZARD_BACKEND_ENV = "REPRO_HAZARD_BACKEND"

#: The spec both engines use when nothing is configured.
DEFAULT_BACKEND = "analytic"


class Hazard:
    """One inter-arrival-time sampler: the unit of backend dispatch.

    Subclasses implement :meth:`sample_interarrivals` and :attr:`mean`;
    everything else derives from those.  The object is duck-compatible
    with :func:`repro.failures.hazards.renewal_arrivals` (which calls
    ``.sample``), so the legacy injector's renewal loop consumes it
    unchanged.
    """

    def sample_interarrivals(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Draw ``n`` inter-arrival gaps (seconds)."""
        raise NotImplementedError

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Alias for :meth:`sample_interarrivals` (renewal-loop duck type)."""
        return self.sample_interarrivals(rng, n)

    def sample_cohort(
        self, rng: np.random.Generator, shape: Tuple[int, ...]
    ) -> np.ndarray:
        """Batched draw for the vector engine: gaps with the given shape.

        One flat draw reshaped, so an ``(m, k)`` cohort request consumes
        exactly the randomness of ``m * k`` scalar gap draws.
        """
        total = int(np.prod(shape))
        return self.sample_interarrivals(rng, total).reshape(shape)

    def equilibrium_delay(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Delays from deployment to each process's first arrival.

        The stationary forward-recurrence time is ``U * L`` with ``L`` a
        *length-biased* gap.  The generic fallback uses plain gaps — a
        slight bias toward early first arrivals that distribution-aware
        subclasses (analytic gamma, empirical) correct exactly.
        """
        gaps = self.sample_interarrivals(rng, n)
        return rng.random(n) * gaps

    @property
    def mean(self) -> float:
        """Mean inter-arrival time in seconds."""
        raise NotImplementedError


class HazardBackend:
    """The per-failure-type hazard policy shared by both engines.

    Subclasses set :attr:`name` and implement :meth:`uses_renewal` /
    :meth:`hazard`; the rate bookkeeping below is common to all of them
    so every backend delivers the same calibrated AFRs — backends change
    the *pattern* of failures, not their long-run rates.
    """

    name = "abstract"

    def cache_token(self) -> str:
        """Stable identity for runtime cache keys.

        Data-driven backends extend this with a content hash of their
        source file, so editing a trace invalidates cached results.
        """
        return self.name

    def active_types(self, config) -> Tuple[FailureType, ...]:
        """The failure types this run injects, in stacking order.

        Always the paper's four; extended types join only when their
        hazard is configured, keeping default output four-typed.
        """
        active = FAILURE_TYPE_ORDER
        if config.operator_error_rate_per_disk_year > 0.0:
            active = active + EXTENDED_FAILURE_TYPES
        return active

    def uses_shocks(self, config) -> bool:
        """Whether the shared shock processes run under this backend.

        Data-driven backends return False: a recorded trace already
        embeds whatever burstiness the source fleet had, so layering
        synthetic shocks on top would double-count it.
        """
        return config.shocks_enabled

    def delivered_rate(
        self,
        config,
        system_class,
        failure_type: FailureType,
        disk_model: str,
        shelf_model: str,
    ) -> float:
        """Delivered failure rate (events per disk-second), multipliers
        applied.

        Core types come from the calibrated per-class AFR tables;
        operator error from the config's per-disk-year knob.
        """
        if failure_type in EXTENDED_FAILURE_TYPES:
            return config.rate_multiplier(failure_type) * (
                config.operator_error_rate_per_disk_year / SECONDS_PER_YEAR
            )
        return config.rate_multiplier(
            failure_type
        ) * afr_percent_to_rate_per_second(
            calibration.delivered_afr_percent(
                system_class, failure_type, disk_model, shelf_model
            )
        )

    def uses_renewal(self, config, failure_type: FailureType) -> bool:
        """Whether this type's independent share is a renewal process.

        True routes the type through per-shelf :meth:`hazard` sampling;
        False keeps the exact per-bay Poisson machinery.
        """
        raise NotImplementedError

    def hazard(
        self,
        config,
        failure_type: FailureType,
        mean_seconds: float,
        system_class=None,
    ) -> Optional[Hazard]:
        """The inter-arrival sampler for one process of this type.

        ``mean_seconds`` is the target mean gap (the reciprocal of the
        process rate); backends shape the distribution around it.  Must
        return a :class:`Hazard` whenever :meth:`uses_renewal` is True
        for the type.
        """
        raise NotImplementedError


def parse_spec(spec: str) -> Tuple[str, Optional[str]]:
    """Split a backend spec into ``(name, argument)``.

    ``"analytic"`` → ``("analytic", None)``;
    ``"trace:runs/events.jsonl"`` → ``("trace", "runs/events.jsonl")``.
    """
    name, sep, argument = spec.partition(":")
    name = name.strip()
    if not name:
        raise SpecificationError("empty hazard backend spec")
    return name, (argument if sep else None)


def resolve(spec: Optional[str] = None) -> HazardBackend:
    """The backend a spec (or the environment) selects.

    Resolution order: explicit ``spec`` argument (from
    ``InjectorConfig.hazard_backend``), then ``REPRO_HAZARD_BACKEND``,
    then the analytic default.  Instances are cached per spec string —
    data-driven backends read and index their trace once per process.
    """
    if spec is None:
        spec = envvars.get(HAZARD_BACKEND_ENV) or DEFAULT_BACKEND
    cached = _CACHE.get(spec)
    if cached is not None:
        return cached
    name, argument = parse_spec(spec)
    if name == "analytic":
        if argument is not None:
            raise SpecificationError("the analytic backend takes no argument")
        from repro.failures.backends.analytic import AnalyticBackend

        backend: HazardBackend = AnalyticBackend()
    elif name == "trace":
        if not argument:
            raise SpecificationError("trace backend needs a path: trace:<events>")
        from repro.failures.backends.trace import TraceBackend

        backend = TraceBackend(argument)
    elif name == "fitted":
        if not argument:
            raise SpecificationError("fitted backend needs a path: fitted:<events>")
        from repro.failures.backends.fitted import FittedBackend

        backend = FittedBackend(argument)
    else:
        raise SpecificationError(
            "unknown hazard backend %r (have: analytic, trace:<path>, "
            "fitted:<path>)" % name
        )
    _CACHE[spec] = backend
    return backend


#: Per-spec backend instances (clear in tests that rewrite trace files).
_CACHE: dict = {}


__all__ = [
    "DEFAULT_BACKEND",
    "HAZARD_BACKEND_ENV",
    "Hazard",
    "HazardBackend",
    "parse_spec",
    "resolve",
]
