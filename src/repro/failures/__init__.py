"""Failure taxonomy, hazard processes, and the fleet failure injector.

This package models the *generation* of storage subsystem failures:

- :mod:`repro.failures.types` — the paper's four failure categories.
- :mod:`repro.failures.events` — immutable failure-event records.
- :mod:`repro.failures.hazards` — per-component renewal/Poisson hazards.
- :mod:`repro.failures.shocks` — shared shock processes that create the
  correlated, bursty behaviour the paper observes (§5.2.3).
- :mod:`repro.failures.multipath` — active/passive multipath masking.
- :mod:`repro.failures.raidlayer` — propagation of raw component errors
  up to the RAID layer, where subsystem failures are counted.
- :mod:`repro.failures.backends` — pluggable hazard sources (analytic,
  trace replay, fitted re-simulation) shared by both engines.
- :mod:`repro.failures.injector` — drives all of the above over a fleet.

Only the dependency-free vocabulary modules are re-exported here; import
:class:`repro.failures.injector.FailureInjector` (or use the top-level
``repro`` namespace) for the injector itself — it depends on the fleet
package, which in turn uses this package's vocabulary.
"""

from repro.failures.types import (
    ALL_FAILURE_TYPES,
    EXTENDED_FAILURE_TYPES,
    FAILURE_TYPE_ORDER,
    FailureType,
    InterconnectCause,
)
from repro.failures.events import ComponentError, FailureEvent

__all__ = [
    "ALL_FAILURE_TYPES",
    "EXTENDED_FAILURE_TYPES",
    "FAILURE_TYPE_ORDER",
    "FailureType",
    "InterconnectCause",
    "ComponentError",
    "FailureEvent",
]
