"""Active/passive multipathing: masking of physical interconnect faults.

Mid-range and high-end systems can connect shelves to two independent FC
networks (§4.3).  When the active network fails, I/O is redirected over
the passive one, so the fault never surfaces as a subsystem failure.
Masking is imperfect for three reasons the paper discusses: shelf
backplane/power faults have no redundant path, the two "logical" HBAs
may share one physical adapter, and failover itself can fail — which is
why dual-path AFR stays well above the idealized two-independent-network
product.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.failures.types import InterconnectCause
from repro.fleet.calibration import MULTIPATH_MASK_PROBABILITY


@dataclasses.dataclass(frozen=True)
class MultipathModel:
    """Decides whether an interconnect fault is masked by the second path.

    Attributes:
        mask_probability: probability a *maskable* fault on a dual-path
            system is tolerated by failover (default from calibration).
    """

    mask_probability: float = MULTIPATH_MASK_PROBABILITY

    def __post_init__(self) -> None:
        if not 0.0 <= self.mask_probability <= 1.0:
            raise ValueError("mask probability must be in [0, 1]")

    def masks(
        self,
        rng: np.random.Generator,
        dual_path: bool,
        cause: InterconnectCause,
    ) -> bool:
        """Whether this fault is masked (never reaches the RAID layer).

        Single-path systems never mask; dual-path systems mask
        network-path faults with ``mask_probability``, and can never mask
        backplane or shared-physical-HBA faults.
        """
        if not dual_path:
            return False
        if not cause.maskable_by_multipath:
            return False
        return bool(rng.random() < self.mask_probability)

    def expected_reduction(self, network_path_share: float) -> float:
        """Expected fractional reduction of interconnect AFR on dual path.

        With 60% of faults on the network path and 0.9 masking this is
        0.54 — the paper's 50-60% (Finding 7).
        """
        if not 0.0 <= network_path_share <= 1.0:
            raise ValueError("share must be in [0, 1]")
        return network_path_share * self.mask_probability
