"""Stochastic arrival processes used by the failure injector.

Three inter-arrival families are provided — exponential (homogeneous
Poisson), gamma renewal, and Weibull renewal — matching the candidate
distributions the paper fits in Fig. 9.  All samplers take an explicit
``numpy.random.Generator`` so callers control determinism.
"""

from __future__ import annotations

import dataclasses
import math
from typing import List

import numpy as np

from repro.errors import SpecificationError


def poisson_arrivals(
    rng: np.random.Generator, rate_per_second: float, start: float, end: float
) -> np.ndarray:
    """Arrival times of a homogeneous Poisson process on ``[start, end)``.

    Uses the order-statistics construction: draw ``N ~ Poisson(rate*T)``
    then place the N points uniformly, which is exact and vectorized.

    Returns:
        Sorted array of arrival times (possibly empty).
    """
    if rate_per_second < 0.0:
        raise SpecificationError("rate must be non-negative")
    span = end - start
    if span <= 0.0 or rate_per_second == 0.0:
        return np.empty(0, dtype=float)
    count = rng.poisson(rate_per_second * span)
    if count == 0:
        return np.empty(0, dtype=float)
    times = start + rng.random(count) * span
    times.sort()
    return times


@dataclasses.dataclass(frozen=True)
class ExponentialInterarrival:
    """Exponential inter-arrival times with the given mean (seconds)."""

    mean_seconds: float

    def __post_init__(self) -> None:
        if self.mean_seconds <= 0.0:
            raise SpecificationError("mean must be positive")

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Draw ``n`` inter-arrival gaps."""
        return rng.exponential(self.mean_seconds, size=n)

    @property
    def mean(self) -> float:
        """Mean inter-arrival time in seconds."""
        return self.mean_seconds


@dataclasses.dataclass(frozen=True)
class GammaInterarrival:
    """Gamma(shape, scale) inter-arrival times.

    ``shape < 1`` gives clustered ("bursty") renewals — short gaps are
    over-represented relative to an exponential of the same mean.
    """

    shape: float
    scale_seconds: float

    def __post_init__(self) -> None:
        if self.shape <= 0.0 or self.scale_seconds <= 0.0:
            raise SpecificationError("shape and scale must be positive")

    @classmethod
    def from_mean(cls, shape: float, mean_seconds: float) -> "GammaInterarrival":
        """Construct from a target mean: scale = mean / shape."""
        return cls(shape=shape, scale_seconds=mean_seconds / shape)

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Draw ``n`` inter-arrival gaps."""
        return rng.gamma(self.shape, self.scale_seconds, size=n)

    @property
    def mean(self) -> float:
        """Mean inter-arrival time in seconds."""
        return self.shape * self.scale_seconds


@dataclasses.dataclass(frozen=True)
class WeibullInterarrival:
    """Weibull(shape, scale) inter-arrival times."""

    shape: float
    scale_seconds: float

    def __post_init__(self) -> None:
        if self.shape <= 0.0 or self.scale_seconds <= 0.0:
            raise SpecificationError("shape and scale must be positive")

    @classmethod
    def from_mean(cls, shape: float, mean_seconds: float) -> "WeibullInterarrival":
        """Construct from a target mean via the Gamma-function identity."""
        scale = mean_seconds / math.gamma(1.0 + 1.0 / shape)
        return cls(shape=shape, scale_seconds=scale)

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Draw ``n`` inter-arrival gaps."""
        return self.scale_seconds * rng.weibull(self.shape, size=n)

    @property
    def mean(self) -> float:
        """Mean inter-arrival time in seconds."""
        return self.scale_seconds * math.gamma(1.0 + 1.0 / self.shape)


def renewal_arrivals(
    rng: np.random.Generator,
    interarrival,
    start: float,
    end: float,
    batch: int = 64,
) -> List[float]:
    """Arrival times of a renewal process with the given gap sampler.

    Gaps are drawn in batches until the cumulative time passes ``end``;
    arrivals beyond ``end`` are discarded.
    """
    if end <= start:
        return []
    times: List[float] = []
    current = start
    while current < end:
        gaps = interarrival.sample(rng, batch)
        for gap in gaps:
            current += float(gap)
            if current >= end:
                return times
            times.append(current)
    return times
