"""Shared shock processes: the mechanism behind correlated failures.

The paper's §5.2.3 explains why failures of every type self-correlate
within a shelf (and, through interconnect sharing, within a RAID group):
disks in a shelf share cooling, power, backplane, cables, HBAs, and
driver update schedules.  We model each mechanism as a *shock process*:
a Poisson stream of shelf-scoped shocks; each shock independently
afflicts every disk in the shelf with some probability, and afflicted
disks fail shortly after (exponential spread).  The superposition of
per-disk independent hazards and shock-induced clusters reproduces both
the bursty inter-arrival CDFs (Fig. 9) and the super-independent P(2)
(Fig. 10).
"""

from __future__ import annotations

import dataclasses
from typing import List

import numpy as np

from repro.failures.hazards import poisson_arrivals
from repro.failures.types import FailureType
from repro.fleet.calibration import ShockParams


@dataclasses.dataclass(frozen=True)
class Shock:
    """One shelf-scoped shock.

    Attributes:
        time: onset time (seconds since study start).
        failure_type: the failure category the shock produces.
        shelf_id: afflicted shelf.
        hit_slots: indices of the shelf's bays the shock afflicts.
        spread_delays: per-hit delay (seconds after onset) of the induced
            failure; parallel to ``hit_slots``.
    """

    time: float
    failure_type: FailureType
    shelf_id: str
    hit_slots: List[int]
    spread_delays: List[float]


def shock_rate_per_shelf(
    delivered_rate_per_disk: float, params: ShockParams
) -> float:
    """Shock onset rate (per second per shelf) for a delivered rate.

    A shock afflicts each disk with probability ``hit_prob``, so the
    shock-delivered per-disk event rate is ``onset_rate * hit_prob``; to
    deliver the fraction ``rho`` of the target rate through shocks the
    onset rate must be ``rho * rate / hit_prob``.
    """
    return params.rho * delivered_rate_per_disk / params.hit_prob


def generate_shocks(
    rng: np.random.Generator,
    failure_type: FailureType,
    shelf_id: str,
    n_slots: int,
    delivered_rate_per_disk: float,
    params: ShockParams,
    start: float,
    end: float,
) -> List[Shock]:
    """Generate the shock stream for one shelf and one failure type.

    Args:
        rng: random stream for this shelf+type.
        failure_type: category the shocks produce.
        shelf_id: shelf identifier recorded on each shock.
        n_slots: populated bays in the shelf.
        delivered_rate_per_disk: target per-disk per-second event rate
            (the shock share ``rho`` of it is delivered here).
        params: shock calibration for the type.
        start: shelf in-service time (system deployment).
        end: end of the observation window.

    Returns:
        Shocks in time order; shocks that happen to hit zero bays are
        dropped (their rate contribution is part of the hit-probability
        accounting, not an extra loss).
    """
    onset_rate = shock_rate_per_shelf(delivered_rate_per_disk, params)
    shocks: List[Shock] = []
    for onset in poisson_arrivals(rng, onset_rate, start, end):
        hits = np.nonzero(rng.random(n_slots) < params.hit_prob)[0]
        if hits.size == 0:
            continue
        delays = rng.exponential(params.window_mean_seconds, size=hits.size)
        shocks.append(
            Shock(
                time=float(onset),
                failure_type=failure_type,
                shelf_id=shelf_id,
                hit_slots=[int(i) for i in hits],
                spread_delays=[float(d) for d in delays],
            )
        )
    return shocks
