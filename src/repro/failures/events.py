"""Immutable event records produced by the failure injector.

Two granularities exist, mirroring the paper's log architecture (Fig. 3):

- :class:`ComponentError` — a raw error observed at some layer of the I/O
  path (FC adapter, SCSI, disk driver).  Many component errors are
  recovered by retries or tolerated by multipathing and never become
  subsystem failures.
- :class:`FailureEvent` — a storage **subsystem failure**: an error that
  propagated all the way to the RAID layer and broke the I/O path.  These
  are the events every statistic in the paper is computed over.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.failures.types import FailureType, InterconnectCause


@dataclasses.dataclass(frozen=True)
class ComponentError:
    """A raw error at one layer of the I/O request path.

    Attributes:
        time: occurrence time, seconds since the start of the study window.
        layer: originating layer, e.g. ``"fci"`` (FC interconnect),
            ``"scsi"``, ``"disk"``.
        event: dotted event name as it appears in logs, e.g.
            ``"fci.device.timeout"`` (empty when synthesized outside the
            log pipeline).
        disk_id: fleet-unique id of the affected disk.
        failure_type: the subsystem failure category this error belongs to.
        recovered: True if a lower layer recovered the error (retry,
            failover) so it never surfaced as a subsystem failure.
        cause: sub-cause for physical interconnect errors, else ``None``.
    """

    time: float
    layer: str
    disk_id: str
    failure_type: FailureType
    recovered: bool = False
    cause: Optional[InterconnectCause] = None
    event: str = ""


@dataclasses.dataclass(frozen=True)
class FailureEvent:
    """A storage subsystem failure as counted by the paper.

    The event is tagged with the affected disk and with the disk's full
    topological coordinates, because the analyses group failures by shelf,
    RAID group, system, and the hardware models involved.

    Attributes:
        occur_time: true occurrence time (seconds since study start); only
            the simulator knows this.
        detect_time: when the hourly proactive verification detected the
            failure; analyses must use this, as the paper does.
        failure_type: one of the four categories.
        disk_id / shelf_id / raid_group_id / system_id: topology keys.
        system_class: ``"nearline" | "low_end" | "mid_range" | "high_end"``.
        disk_model: anonymized disk model name, e.g. ``"A-2"``.
        shelf_model: anonymized shelf enclosure model name, e.g. ``"B"``.
        dual_path: whether the hosting system has redundant interconnects.
        cause: interconnect sub-cause when applicable.
        replaced_disk: for disk failures, True when the disk was replaced
            afterwards (affects exposure accounting).
    """

    occur_time: float
    detect_time: float
    failure_type: FailureType
    disk_id: str
    shelf_id: str
    raid_group_id: str
    system_id: str
    system_class: str
    disk_model: str
    shelf_model: str
    dual_path: bool
    cause: Optional[InterconnectCause] = None
    replaced_disk: bool = False

    def __post_init__(self) -> None:
        if self.detect_time < self.occur_time:
            raise ValueError(
                "detect_time %.1f precedes occur_time %.1f"
                % (self.detect_time, self.occur_time)
            )

    def with_detect_time(self, detect_time: float) -> "FailureEvent":
        """Return a copy with a different detection timestamp."""
        return dataclasses.replace(self, detect_time=detect_time)
