"""RAID groups: membership over disk slots, RAID level metadata.

A RAID group is defined over *slots* rather than disks, because disks are
replaced over the study window while group membership (which bays form
the group) is stable.  The analyses that group failures "by RAID group"
attribute a failure to the group owning the affected disk's slot.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import List, Set


class RaidType(enum.Enum):
    """RAID resiliency level used by a group (the study saw RAID4/RAID6)."""

    RAID4 = "RAID4"
    RAID6 = "RAID6"  # NetApp RAID-DP: row-diagonal double parity

    @property
    def parity_disks(self) -> int:
        """Number of parity disks the level dedicates per group."""
        return 1 if self is RaidType.RAID4 else 2

    @property
    def tolerated_failures(self) -> int:
        """Concurrent whole-disk failures the level can tolerate."""
        return self.parity_disks


@dataclasses.dataclass
class RAIDGroup:
    """A RAID group spanning one or more shelves (Fig. 8).

    Attributes:
        raid_group_id: fleet-unique identifier.
        system_id: hosting storage system.
        raid_type: RAID4 or RAID6 (RAID-DP).
        slot_keys: stable bay identifiers (``"<shelf_id>/<slot>"``) of the
            member slots, data and parity alike.
        shelf_ids: the distinct shelves the group spans.
    """

    raid_group_id: str
    system_id: str
    raid_type: RaidType
    slot_keys: List[str] = dataclasses.field(default_factory=list)

    @property
    def size(self) -> int:
        """Total member disks (data + parity)."""
        return len(self.slot_keys)

    @property
    def data_disks(self) -> int:
        """Number of data (non-parity) disks in the group."""
        return max(0, self.size - self.raid_type.parity_disks)

    @property
    def shelf_ids(self) -> Set[str]:
        """The distinct shelves this group spans."""
        return {key.rsplit("/", 1)[0] for key in self.slot_keys}

    @property
    def span(self) -> int:
        """How many shelves the group spans (1 = single point of failure)."""
        return len(self.shelf_ids)
