"""Storage subsystem topology: disks, shelves, RAID groups, systems.

The object model mirrors the paper's architecture figure (Fig. 1): a
storage *system* contains a storage *subsystem* made of shelf enclosures
(each hosting up to 14 disks), disks, host adapters and cables, with RAID
groups laid out over disk slots — typically spanning about three shelves
(Fig. 8) so that one shelf is not a single point of failure for a group.
"""

from repro.topology.classes import SystemClass, SYSTEM_CLASS_ORDER
from repro.topology.models import DiskModel, ShelfModel
from repro.topology.components import Disk, DiskSlot, Shelf, MAX_DISKS_PER_SHELF
from repro.topology.raidgroup import RAIDGroup, RaidType
from repro.topology.system import StorageSystem
from repro.topology.layout import LayoutPolicy, assign_raid_groups

__all__ = [
    "SystemClass",
    "SYSTEM_CLASS_ORDER",
    "DiskModel",
    "ShelfModel",
    "Disk",
    "DiskSlot",
    "Shelf",
    "MAX_DISKS_PER_SHELF",
    "RAIDGroup",
    "RaidType",
    "StorageSystem",
    "LayoutPolicy",
    "assign_raid_groups",
]
