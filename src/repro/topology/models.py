"""Anonymized hardware model descriptors (disk models, shelf models).

The paper anonymizes disk products as *family-capacity* pairs — e.g. disk
model ``A-2`` is family ``A`` at its second-smallest capacity — and shelf
enclosure products as single letters.  We reproduce the same convention.
Per-model reliability multipliers live with the fleet calibration
(:mod:`repro.fleet.calibration`), not here; these classes are pure
descriptors.
"""

from __future__ import annotations

import dataclasses
import re

_MODEL_NAME_RE = re.compile(r"^([A-Z])-(\d+)$")


@dataclasses.dataclass(frozen=True, order=True)
class DiskModel:
    """A disk family plus a capacity rank, e.g. ``DiskModel("H", 2)``.

    Attributes:
        family: single-letter anonymized family name (a disk *product*,
            e.g. "Seagate Cheetah 10k.7" in the paper's example).
        capacity_rank: 1-based rank of the capacity within the family;
            within a family larger rank means larger capacity.
        interface: ``"FC"`` or ``"SATA"``.
        capacity_gb: nominal capacity, used by the RAID rebuild model.
    """

    family: str
    capacity_rank: int
    interface: str = "FC"
    capacity_gb: int = 0

    def __post_init__(self) -> None:
        if not (len(self.family) == 1 and self.family.isupper()):
            raise ValueError("disk family must be a single capital letter")
        if self.capacity_rank < 1:
            raise ValueError("capacity_rank is 1-based")
        if self.interface not in ("FC", "SATA"):
            raise ValueError("interface must be 'FC' or 'SATA'")

    @property
    def name(self) -> str:
        """Canonical anonymized name, e.g. ``"A-2"``."""
        return "%s-%d" % (self.family, self.capacity_rank)

    @classmethod
    def parse(cls, name: str, interface: str = "FC", capacity_gb: int = 0) -> "DiskModel":
        """Parse a canonical name like ``"H-1"`` back into a model."""
        match = _MODEL_NAME_RE.match(name)
        if match is None:
            raise ValueError("not a disk model name: %r" % name)
        return cls(
            family=match.group(1),
            capacity_rank=int(match.group(2)),
            interface=interface,
            capacity_gb=capacity_gb,
        )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


@dataclasses.dataclass(frozen=True, order=True)
class ShelfModel:
    """An anonymized shelf enclosure model, e.g. ``ShelfModel("B")``.

    All shelf enclosure models studied in the paper host at most 14 disks;
    per-model differences (power supply, cooling, backplane design) are
    captured as rate multipliers in the fleet calibration.
    """

    name: str

    def __post_init__(self) -> None:
        if not (len(self.name) == 1 and self.name.isupper()):
            raise ValueError("shelf model must be a single capital letter")

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name
