"""Physical components: disks, disk slots, and shelf enclosures.

A :class:`Shelf` owns up to 14 :class:`DiskSlot` bays.  Because disks are
replaced in the field (the paper counts "disks ever installed" and
accounts for per-disk lifetime), a slot keeps the full *history* of disks
it has hosted; exposure accounting walks those histories.
"""

from __future__ import annotations

import dataclasses
from typing import Iterator, List, Optional

from repro.errors import TopologyError

#: Every shelf enclosure model in the study hosts at most 14 disks (§2.2).
MAX_DISKS_PER_SHELF = 14


@dataclasses.dataclass
class Disk:
    """One physical disk, from installation until removal (or study end).

    Attributes:
        disk_id: fleet-unique identifier.
        model: anonymized disk model name, e.g. ``"D-2"``.
        system_id / shelf_id: hosting system and shelf.
        slot_index: bay index within the shelf.
        raid_group_id: the RAID group the slot belongs to.
        install_time: seconds since study start when the disk entered
            service (0 for disks present at system deployment).
        remove_time: when the disk left service (after a disk failure),
            or ``None`` if still in service at the end of the window.
        serial: pseudo serial number, used in log messages.
    """

    disk_id: str
    model: str
    system_id: str
    shelf_id: str
    slot_index: int
    raid_group_id: str
    install_time: float
    remove_time: Optional[float] = None
    serial: str = ""

    def in_service_at(self, time: float) -> bool:
        """Whether the disk was in service at ``time``."""
        if time < self.install_time:
            return False
        return self.remove_time is None or time < self.remove_time

    def service_seconds(self, window_end: float) -> float:
        """In-service time accumulated by ``window_end`` (exposure)."""
        end = window_end if self.remove_time is None else min(self.remove_time, window_end)
        return max(0.0, end - self.install_time)


@dataclasses.dataclass
class DiskSlot:
    """A physical disk bay; hosts a sequence of disks over time."""

    shelf_id: str
    slot_index: int
    raid_group_id: str
    disks: List[Disk] = dataclasses.field(default_factory=list)

    @property
    def slot_key(self) -> str:
        """Stable identifier of the bay, e.g. ``"shelf-0007/03"``."""
        return "%s/%02d" % (self.shelf_id, self.slot_index)

    @property
    def current_disk(self) -> Optional[Disk]:
        """The disk currently in the bay (the last not-removed one)."""
        if not self.disks:
            return None
        last = self.disks[-1]
        return None if last.remove_time is not None else last

    def install(self, disk: Disk) -> None:
        """Install ``disk`` into this bay.

        Raises:
            TopologyError: if the bay is still occupied or the disk's
                coordinates do not match the bay.
        """
        if self.current_disk is not None:
            raise TopologyError("slot %s is occupied" % self.slot_key)
        if disk.shelf_id != self.shelf_id or disk.slot_index != self.slot_index:
            raise TopologyError(
                "disk %s coordinates do not match slot %s"
                % (disk.disk_id, self.slot_key)
            )
        if self.disks and disk.install_time < (self.disks[-1].remove_time or 0.0):
            raise TopologyError(
                "disk %s installed before previous disk was removed" % disk.disk_id
            )
        self.disks.append(disk)

    def disk_at(self, time: float) -> Optional[Disk]:
        """The disk that occupied the bay at ``time``, if any."""
        for disk in self.disks:
            if disk.in_service_at(time):
                return disk
        return None


@dataclasses.dataclass
class Shelf:
    """A shelf enclosure: power, cooling, and a prewired backplane.

    Disks mounted in the same shelf share the enclosure's environment —
    the mechanism behind the shelf-level failure correlation the paper
    reports (§5.2.3).
    """

    shelf_id: str
    model: str
    system_id: str
    slots: List[DiskSlot] = dataclasses.field(default_factory=list)

    def add_slots(self, count: int, raid_group_ids: Optional[List[str]] = None) -> None:
        """Create ``count`` empty bays (RAID group ids may be set later)."""
        if len(self.slots) + count > MAX_DISKS_PER_SHELF:
            raise TopologyError(
                "shelf %s cannot host %d disks (max %d)"
                % (self.shelf_id, len(self.slots) + count, MAX_DISKS_PER_SHELF)
            )
        for offset in range(count):
            group_id = raid_group_ids[offset] if raid_group_ids else ""
            self.slots.append(
                DiskSlot(
                    shelf_id=self.shelf_id,
                    slot_index=len(self.slots),
                    raid_group_id=group_id,
                )
            )

    def iter_disks(self) -> Iterator[Disk]:
        """All disks ever installed in this shelf, in slot order."""
        for slot in self.slots:
            yield from slot.disks

    @property
    def disk_count_ever(self) -> int:
        """Number of disks ever installed (the paper's Table 1 convention)."""
        return sum(len(slot.disks) for slot in self.slots)
