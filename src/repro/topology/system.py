"""The storage system: shelves + RAID groups + path configuration."""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterator, List, Optional

from repro.errors import TopologyError
from repro.topology.classes import SystemClass
from repro.topology.components import Disk, DiskSlot, Shelf
from repro.topology.raidgroup import RAIDGroup


@dataclasses.dataclass
class StorageSystem:
    """One commercially deployed storage system.

    Attributes:
        system_id: fleet-unique identifier.
        system_class: near-line / low-end / mid-range / high-end.
        shelf_model: anonymized shelf enclosure model used by the system
            (systems in the study use one enclosure model throughout).
        primary_disk_model: the disk model most bays were populated with.
        dual_path: True when the system connects shelves to two
            independent FC networks (active/passive multipathing, §4.3).
        deploy_time: seconds since study start when the system shipped;
            exposure is accumulated from this point on.
        shelves: the system's shelf enclosures.
        raid_groups: the system's RAID groups.
    """

    system_id: str
    system_class: SystemClass
    shelf_model: str
    primary_disk_model: str
    dual_path: bool
    deploy_time: float
    shelves: List[Shelf] = dataclasses.field(default_factory=list)
    raid_groups: List[RAIDGroup] = dataclasses.field(default_factory=list)

    def __post_init__(self) -> None:
        if self.dual_path and not self.system_class.supports_dual_path:
            raise TopologyError(
                "system class %s does not support dual-path FC"
                % self.system_class.value
            )

    # -- lookups ---------------------------------------------------------

    def slot_by_key(self, slot_key: str) -> DiskSlot:
        """Resolve a stable bay key (``"<shelf_id>/<slot>"``) to its slot."""
        index = self._slot_index()
        try:
            return index[slot_key]
        except KeyError:
            raise TopologyError(
                "system %s has no slot %s" % (self.system_id, slot_key)
            ) from None

    def _slot_index(self) -> Dict[str, DiskSlot]:
        cached = getattr(self, "_slot_index_cache", None)
        if cached is None or len(cached) != sum(len(s.slots) for s in self.shelves):
            cached = {
                slot.slot_key: slot
                for shelf in self.shelves
                for slot in shelf.slots
            }
            object.__setattr__(self, "_slot_index_cache", cached)
        return cached

    def raid_group_by_id(self, raid_group_id: str) -> RAIDGroup:
        """Find a RAID group by id."""
        for group in self.raid_groups:
            if group.raid_group_id == raid_group_id:
                return group
        raise TopologyError(
            "system %s has no RAID group %s" % (self.system_id, raid_group_id)
        )

    # -- iteration & accounting ------------------------------------------

    def iter_slots(self) -> Iterator[DiskSlot]:
        """All disk bays across all shelves."""
        for shelf in self.shelves:
            yield from shelf.slots

    def iter_disks(self) -> Iterator[Disk]:
        """All disks ever installed in the system."""
        for shelf in self.shelves:
            yield from shelf.iter_disks()

    @property
    def disk_count_ever(self) -> int:
        """Disks ever installed during the window (Table 1 convention)."""
        return sum(shelf.disk_count_ever for shelf in self.shelves)

    @property
    def slot_count(self) -> int:
        """Number of populated disk bays."""
        return sum(len(shelf.slots) for shelf in self.shelves)

    def disk_exposure_seconds(self, window_end: float) -> float:
        """Summed in-service disk time (disk-seconds) up to ``window_end``."""
        return sum(d.service_seconds(window_end) for d in self.iter_disks())

    def age_at(self, time: float) -> float:
        """Seconds in the field at ``time`` (0 if not yet deployed)."""
        return max(0.0, time - self.deploy_time)
