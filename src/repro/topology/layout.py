"""RAID group layout policies: spanning shelves vs. within one shelf.

The paper's Fig. 8 shows the common practice of building a RAID group
from one slot of each of several shelves, so a shelf enclosure is not a
single point of failure for the group; groups span about 3 shelves on
average in the studied fleet.  Finding 9 compares this against same-shelf
layouts, so both policies are first-class here.
"""

from __future__ import annotations

import enum
from typing import List

from repro.errors import TopologyError
from repro.topology.components import Shelf
from repro.topology.raidgroup import RAIDGroup, RaidType

#: Average number of shelves a RAID group spans in the studied fleet (§5.1).
DEFAULT_SPAN_WIDTH = 3


class LayoutPolicy(enum.Enum):
    """How RAID group members are placed over shelves."""

    SPAN_SHELVES = "span_shelves"  #: one slot per shelf within a band (Fig. 8)
    SINGLE_SHELF = "single_shelf"  #: consecutive slots within one shelf


def assign_raid_groups(
    system_id: str,
    shelves: List[Shelf],
    group_size: int,
    raid_type: RaidType,
    policy: LayoutPolicy = LayoutPolicy.SPAN_SHELVES,
    span_width: int = DEFAULT_SPAN_WIDTH,
    id_prefix: str = "rg",
) -> List[RAIDGroup]:
    """Partition all bays of ``shelves`` into RAID groups.

    Every bay is assigned to exactly one group; the final group may be
    smaller than ``group_size`` if the bay count does not divide evenly
    (real fleets have such remainder groups too).  The bays'
    ``raid_group_id`` fields are updated in place.

    Args:
        system_id: owner system id, recorded on each group.
        shelves: shelves whose bays are to be grouped; bays must exist.
        group_size: target disks per group (data + parity).
        raid_type: RAID4 or RAID6.
        policy: spanning (default, as in the paper) or single-shelf.
        span_width: for the spanning policy, how many shelves one group
            draws from (the paper's fleet averages about 3).
        id_prefix: prefix for generated group ids.

    Returns:
        The created groups, in id order.

    Raises:
        TopologyError: if ``group_size`` cannot even hold the parity disks,
            ``span_width`` is not positive, or there are no bays to assign.
    """
    if group_size <= raid_type.parity_disks:
        raise TopologyError(
            "group size %d cannot hold %d parity disks plus data"
            % (group_size, raid_type.parity_disks)
        )
    if span_width < 1:
        raise TopologyError("span_width must be >= 1, got %d" % span_width)
    key_runs = _ordered_slot_key_runs(shelves, policy, span_width)
    if not any(key_runs):
        raise TopologyError("no disk bays to assign in system %s" % system_id)

    groups: List[RAIDGroup] = []
    for run in key_runs:
        # Groups never straddle runs (bands/shelves), so the spanning
        # guarantee — a group touches at most span_width shelves — holds
        # even when a band's bay count does not divide evenly.
        for start in range(0, len(run), group_size):
            members = run[start : start + group_size]
            group = RAIDGroup(
                raid_group_id="%s-%s-%04d" % (id_prefix, system_id, len(groups)),
                system_id=system_id,
                raid_type=raid_type,
                slot_keys=members,
            )
            groups.append(group)

    slot_by_key = {
        slot.slot_key: slot for shelf in shelves for slot in shelf.slots
    }
    for group in groups:
        for key in group.slot_keys:
            slot_by_key[key].raid_group_id = group.raid_group_id
    return groups


def _ordered_slot_key_runs(
    shelves: List[Shelf], policy: LayoutPolicy, span_width: int
) -> List[List[str]]:
    """Order bays into runs; groups are cut within a run, never across.

    - ``SINGLE_SHELF``: one run per shelf — every group stays in one
      shelf.
    - ``SPAN_SHELVES``: one run per band of ``span_width`` shelves; the
      run is slot-major (slot 0 of every shelf in the band, then slot 1,
      ...), the column-wise layout of the paper's Fig. 8, so a group's
      consecutive bays come from different shelves.
    """
    if policy is LayoutPolicy.SINGLE_SHELF:
        return [
            [slot.slot_key for slot in shelf.slots] for shelf in shelves
        ]
    runs: List[List[str]] = []
    for band_start in range(0, len(shelves), span_width):
        band = shelves[band_start : band_start + span_width]
        max_slots = max((len(shelf.slots) for shelf in band), default=0)
        run: List[str] = []
        for slot_index in range(max_slots):
            for shelf in band:
                if slot_index < len(shelf.slots):
                    run.append(shelf.slots[slot_index].slot_key)
        runs.append(run)
    return runs
