"""Storage system classes (§2.2): near-line, low-end, mid-range, high-end.

Near-line systems are SATA-based secondary (backup/archival) storage;
low/mid/high-end are FC-based primary storage with increasing scale and
redundancy (only mid-range and high-end support dual-path FC networks).
"""

from __future__ import annotations

import enum


class SystemClass(enum.Enum):
    """Capability/usage class of a storage system."""

    NEARLINE = "nearline"
    LOW_END = "low_end"
    MID_RANGE = "mid_range"
    HIGH_END = "high_end"

    @property
    def label(self) -> str:
        """Display label as used in the paper's figures."""
        return _LABELS[self]

    @property
    def is_primary(self) -> bool:
        """True for primary-storage classes (everything but near-line)."""
        return self is not SystemClass.NEARLINE

    @property
    def supports_dual_path(self) -> bool:
        """Whether the class's FC drivers support active/passive multipath."""
        return self in (SystemClass.MID_RANGE, SystemClass.HIGH_END)

    @property
    def disk_interface(self) -> str:
        """Dominant disk interface for the class (``"SATA"`` or ``"FC"``)."""
        return "SATA" if self is SystemClass.NEARLINE else "FC"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.label


_LABELS = {
    SystemClass.NEARLINE: "Nearline",
    SystemClass.LOW_END: "Low-end",
    SystemClass.MID_RANGE: "Mid-range",
    SystemClass.HIGH_END: "High-end",
}

#: Presentation order used throughout the paper's tables and figures.
SYSTEM_CLASS_ORDER = (
    SystemClass.NEARLINE,
    SystemClass.LOW_END,
    SystemClass.MID_RANGE,
    SystemClass.HIGH_END,
)
