"""Committed baseline of grandfathered reprolint findings.

A baseline entry fingerprints a finding as ``(code, path, stripped
source line)`` rather than ``(code, path, line number)``, so unrelated
edits that shift line numbers do not churn the file, while editing the
offending line itself surfaces the finding again — which is the point.
Identical lines in one file (e.g. two ``for event in self.events:``
loops) are handled as a multiset: each entry absorbs as many findings
as its recorded count.

The file is JSON, sorted, and regenerated deliberately with ``make
lint-baseline`` (never implicitly).  Entries whose violation has been
fixed show up as *stale* in every run as a nudge to regenerate.
"""

from __future__ import annotations

import json
import os
from typing import Callable, Dict, List, Optional, Tuple

from repro.lintkit.engine import Finding

#: Baseline file location relative to the repo root.
DEFAULT_BASELINE_RELPATH = os.path.join("tools", "reprolint_baseline.json")

BASELINE_VERSION = 1

#: The multiset key: (code, path, stripped line content).
Fingerprint = Tuple[str, str, str]


def fingerprint(finding: Finding) -> Fingerprint:
    return (finding.code, finding.path, finding.content)


def load_baseline(path: str) -> Dict[Fingerprint, int]:
    """Load a baseline file into a fingerprint multiset.

    A missing file is an empty baseline; a malformed one raises
    ``ValueError`` (a silently-ignored baseline would un-grandfather
    every finding at once).
    """
    if not os.path.exists(path):
        return {}
    with open(path, "r", encoding="utf-8") as handle:
        try:
            payload = json.load(handle)
        except json.JSONDecodeError as exc:
            raise ValueError("baseline %s is not valid JSON: %s" % (path, exc))
    if not isinstance(payload, dict) or "entries" not in payload:
        raise ValueError("baseline %s has no 'entries' list" % path)
    if int(payload.get("version", 0)) > BASELINE_VERSION:
        raise ValueError(
            "baseline %s has version %s; this reprolint understands <= %d"
            % (path, payload.get("version"), BASELINE_VERSION)
        )
    counts: Dict[Fingerprint, int] = {}
    for entry in payload["entries"]:
        key = (
            str(entry["code"]),
            str(entry["path"]),
            str(entry["content"]),
        )
        counts[key] = counts.get(key, 0) + int(entry.get("count", 1))
    return counts


def apply_baseline(
    findings: List[Finding],
    baseline: Dict[Fingerprint, int],
    relevant: Optional[Callable[[Fingerprint], bool]] = None,
) -> Tuple[List[Finding], int, List[Fingerprint]]:
    """Split findings into (new, absorbed count, stale entries).

    Consumes the baseline multiset: each entry absorbs up to ``count``
    matching findings; leftover entry capacity is reported stale.

    ``relevant`` scopes the staleness check: only leftover entries the
    predicate accepts are reported.  A partial run — explicit paths on
    the command line, a ``--select`` subset, or the per-file pass that
    never executes the project rules — cannot prove an unscanned
    entry's violation was fixed, so it must not call it stale.
    """
    remaining = dict(baseline)
    kept: List[Finding] = []
    absorbed = 0
    for finding in findings:
        key = fingerprint(finding)
        if remaining.get(key, 0) > 0:
            remaining[key] -= 1
            absorbed += 1
        else:
            kept.append(finding)
    stale = sorted(
        key
        for key, count in remaining.items()
        if count > 0 and (relevant is None or relevant(key))
    )
    return kept, absorbed, stale


def render_baseline(findings: List[Finding]) -> str:
    """Serialize findings as a stable, reviewable baseline document."""
    counts: Dict[Fingerprint, int] = {}
    for finding in findings:
        key = fingerprint(finding)
        counts[key] = counts.get(key, 0) + 1
    entries = [
        {"code": code, "path": path, "content": content, "count": count}
        for (code, path, content), count in sorted(counts.items())
    ]
    payload = {
        "version": BASELINE_VERSION,
        "tool": "reprolint",
        "comment": (
            "Grandfathered findings; regenerate deliberately with "
            "`make lint-baseline` (see docs/LINTING.md)."
        ),
        "entries": entries,
    }
    return json.dumps(payload, indent=2, sort_keys=False) + "\n"


def write_baseline(path: str, findings: List[Finding]) -> int:
    """Write the baseline for ``findings``; returns the entry count."""
    document = render_baseline(findings)
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(document)
    return len(json.loads(document)["entries"])
