"""Reporters: findings as terminal text or a machine-readable document.

The JSON document is what the CI job uploads as an artifact; its shape
is versioned so downstream tooling can rely on it.
"""

from __future__ import annotations

from typing import Dict, List

from repro.lintkit.engine import LintResult

#: Schema version of the JSON report document.
REPORT_VERSION = 1


def render_text(result: LintResult, verbose: bool = True) -> str:
    """Human-readable findings, one ``path:line:col: CODE message`` per line."""
    lines: List[str] = []
    for finding in result.findings:
        lines.append(
            "%s: %s %s" % (finding.location(), finding.code, finding.message)
        )
    if result.stale_baseline:
        for code, path, content in result.stale_baseline:
            lines.append(
                "stale baseline entry: %s %s (%r fixed? run `make "
                "lint-baseline`)" % (code, path, content)
            )
    if verbose:
        summary = (
            "reprolint: %d file(s), %d finding(s), %d baselined, "
            "%d suppressed"
            % (
                result.files,
                len(result.findings),
                result.baselined,
                result.suppressed,
            )
        )
        if result.stale_baseline:
            summary += ", %d stale baseline entr(ies)" % len(
                result.stale_baseline
            )
        lines.append(summary)
    return "\n".join(lines)


def render_json(result: LintResult) -> Dict[str, object]:
    """The JSON report document (CI artifact)."""
    counts: Dict[str, int] = {}
    for finding in result.findings:
        counts[finding.code] = counts.get(finding.code, 0) + 1
    return {
        "version": REPORT_VERSION,
        "tool": "reprolint",
        "files": result.files,
        "findings": [
            {
                "code": finding.code,
                "path": finding.path,
                "line": finding.line,
                "col": finding.col,
                "message": finding.message,
                "content": finding.content,
            }
            for finding in result.findings
        ],
        "counts": dict(sorted(counts.items())),
        "baselined": result.baselined,
        "suppressed": result.suppressed,
        "stale_baseline": [
            {"code": code, "path": path, "content": content}
            for code, path, content in result.stale_baseline
        ],
        "clean": result.clean,
    }
