"""The reprolint command line (``python -m repro.lintkit``).

Exit codes: 0 clean (possibly via baseline/suppressions), 1 findings,
2 usage or baseline-format errors.  ``--write-baseline`` regenerates
the committed baseline from the current findings and always exits 0 —
pair it with a reviewed diff, never a blind run (see docs/LINTING.md).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

from repro.lintkit import baseline as baseline_mod
from repro.lintkit import engine, report
from repro.lintkit.rules import RULES, rule_catalog


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lintkit",
        description="AST-based invariant checks for the repro codebase.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to check (default: %s under --root)"
        % (", ".join(engine.DEFAULT_SCAN_DIRS)),
    )
    parser.add_argument(
        "--root",
        default=".",
        help="repo root findings are reported relative to (default: cwd)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help="baseline file (default: <root>/%s)"
        % baseline_mod.DEFAULT_BASELINE_RELPATH.replace(os.sep, "/"),
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline: report grandfathered findings too",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="regenerate the baseline from current findings and exit 0",
    )
    parser.add_argument(
        "--json",
        metavar="FILE",
        default=None,
        help="also write the JSON report document to FILE ('-' = stdout)",
    )
    parser.add_argument(
        "--select",
        metavar="CODES",
        default=None,
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    parser.add_argument(
        "-q",
        "--quiet",
        action="store_true",
        help="suppress the summary line (findings still print)",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)

    if args.list_rules:
        for code, title, _rationale in rule_catalog():
            print("%s  %s" % (code, title))
        return 0

    select: Optional[List[str]] = None
    if args.select:
        select = [code.strip() for code in args.select.split(",") if code.strip()]
        unknown = [code for code in select if code not in RULES]
        if unknown:
            print(
                "reprolint: unknown rule code(s): %s" % ", ".join(unknown),
                file=sys.stderr,
            )
            return 2

    root = os.path.abspath(args.root)
    baseline_path = args.baseline or os.path.join(
        root, baseline_mod.DEFAULT_BASELINE_RELPATH
    )

    if args.write_baseline:
        result = engine.run(
            root, paths=args.paths or None, baseline=None, select=select
        )
        entries = baseline_mod.write_baseline(baseline_path, result.findings)
        print(
            "reprolint: wrote %d baseline entr(ies) covering %d finding(s) "
            "to %s" % (entries, len(result.findings), baseline_path),
            file=sys.stderr,
        )
        return 0

    baseline = None
    if not args.no_baseline:
        try:
            baseline = baseline_mod.load_baseline(baseline_path)
        except ValueError as exc:
            print("reprolint: %s" % exc, file=sys.stderr)
            return 2

    result = engine.run(
        root, paths=args.paths or None, baseline=baseline, select=select
    )

    if args.json:
        document = json.dumps(report.render_json(result), indent=2) + "\n"
        if args.json == "-":
            sys.stdout.write(document)
        else:
            with open(args.json, "w", encoding="utf-8") as handle:
                handle.write(document)

    text = report.render_text(result, verbose=not args.quiet)
    if text:
        print(text)
    return 0 if result.clean else 1


if __name__ == "__main__":
    raise SystemExit(main())
