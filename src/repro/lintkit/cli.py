"""The reprolint command line (``python -m repro.lintkit``).

Exit codes: 0 clean (possibly via baseline/suppressions), 1 findings,
2 usage or baseline-format errors.  ``--write-baseline`` regenerates
the committed baseline from the current findings and always exits 0 —
pair it with a reviewed diff, never a blind run (see docs/LINTING.md).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

from repro.lintkit import baseline as baseline_mod
from repro.lintkit import engine, report
from repro.lintkit.rules import RULES, rule_catalog


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lintkit",
        description="AST-based invariant checks for the repro codebase.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to check (default: %s under --root)"
        % (", ".join(engine.DEFAULT_SCAN_DIRS)),
    )
    parser.add_argument(
        "--root",
        default=".",
        help="repo root findings are reported relative to (default: cwd)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help="baseline file (default: <root>/%s)"
        % baseline_mod.DEFAULT_BASELINE_RELPATH.replace(os.sep, "/"),
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline: report grandfathered findings too",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="regenerate the baseline from current findings and exit 0",
    )
    parser.add_argument(
        "--project",
        action="store_true",
        help="run the whole-program pass (RPL101-RPL104) over src/repro "
        "instead of the per-file rules",
    )
    parser.add_argument(
        "--graph",
        metavar="FILE",
        default=None,
        help="with --project: export the import/call graph as JSON to FILE",
    )
    parser.add_argument(
        "--json",
        metavar="FILE",
        default=None,
        help="also write the JSON report document to FILE ('-' = stdout)",
    )
    parser.add_argument(
        "--select",
        metavar="CODES",
        default=None,
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    parser.add_argument(
        "-q",
        "--quiet",
        action="store_true",
        help="suppress the summary line (findings still print)",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    from repro.lintkit.project_rules import PROJECT_RULES

    args = _build_parser().parse_args(argv)

    if args.list_rules:
        for code, title, _rationale in rule_catalog():
            print("%s  %s" % (code, title))
        return 0

    if args.graph and not args.project:
        print("reprolint: --graph requires --project", file=sys.stderr)
        return 2
    if args.project and args.paths:
        print(
            "reprolint: --project analyzes the whole package; explicit "
            "paths only apply to the per-file pass",
            file=sys.stderr,
        )
        return 2

    select: Optional[List[str]] = None
    if args.select:
        select = [code.strip() for code in args.select.split(",") if code.strip()]
        unknown = [
            code
            for code in select
            if code not in RULES and code not in PROJECT_RULES
        ]
        if unknown:
            print(
                "reprolint: unknown rule code(s): %s" % ", ".join(unknown),
                file=sys.stderr,
            )
            return 2

    root = os.path.abspath(args.root)
    baseline_path = args.baseline or os.path.join(
        root, baseline_mod.DEFAULT_BASELINE_RELPATH
    )

    if args.write_baseline:
        # Both passes share one baseline file: regenerate from the
        # union so writing from either entry point never drops the
        # other pass's grandfathered entries.
        result = engine.run(
            root, paths=args.paths or None, baseline=None, select=select
        )
        project_result, _ctx = engine.run_project(
            root, baseline=None, select=select
        )
        findings = result.findings + project_result.findings
        entries = baseline_mod.write_baseline(baseline_path, findings)
        print(
            "reprolint: wrote %d baseline entr(ies) covering %d finding(s) "
            "to %s" % (entries, len(findings), baseline_path),
            file=sys.stderr,
        )
        return 0

    baseline = None
    if not args.no_baseline:
        try:
            baseline = baseline_mod.load_baseline(baseline_path)
        except ValueError as exc:
            print("reprolint: %s" % exc, file=sys.stderr)
            return 2

    if args.project:
        result, ctx = engine.run_project(
            root, baseline=baseline, select=select
        )
        if args.graph:
            graph_doc = ctx.callgraph.to_json()
            graph_doc["imports"] = ctx.graph.to_json()
            payload = json.dumps(graph_doc, indent=2) + "\n"
            if args.graph == "-":
                sys.stdout.write(payload)
            else:
                with open(args.graph, "w", encoding="utf-8") as handle:
                    handle.write(payload)
    else:
        result = engine.run(
            root, paths=args.paths or None, baseline=baseline, select=select
        )

    if args.json:
        document = json.dumps(report.render_json(result), indent=2) + "\n"
        if args.json == "-":
            sys.stdout.write(document)
        else:
            with open(args.json, "w", encoding="utf-8") as handle:
                handle.write(document)

    text = report.render_text(result, verbose=not args.quiet)
    if text:
        print(text)
    return 0 if result.clean else 1


if __name__ == "__main__":
    raise SystemExit(main())
