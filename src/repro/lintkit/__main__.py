"""``python -m repro.lintkit`` — run the invariant checks."""

import sys

from repro.lintkit.cli import main

if __name__ == "__main__":
    sys.exit(main())
