"""reprolint — AST-based invariant checking for this repository.

Ruff (or the ``tools/lint.py`` fallback) guards *style*; reprolint
guards *invariants* — the properties the reproduction's correctness
actually rests on and that no general-purpose linter knows about:

* determinism: every RNG is seeded (RPL001) and float reductions never
  iterate unordered ``set``/``dict`` containers (RPL005);
* sim-clock purity: simulation code never reads the wall clock
  (RPL002) — the only time axis is :mod:`repro.simulate.clock`;
* columnar-core discipline: analysis modules in :mod:`repro.core`
  aggregate over ``.table`` columns, never by re-materializing
  ``.events`` lists (RPL003);
* configuration hygiene: every ``REPRO_*`` environment variable is
  read through the :mod:`repro.envvars` registry (RPL004);
* generic footguns: mutable default arguments (RPL901) and bare
  ``except`` (RPL902).

A second, *whole-program* pass (``--project``) builds a module graph,
an approximate call graph, and dataflow summaries over ``src/repro``
to check the cross-module invariants no single file can witness:
cache-key soundness (RPL101), fork-safety of worker-reachable module
state (RPL102), import-time environment reads (RPL103), and
engine-dispatch discipline (RPL104).  See
:mod:`repro.lintkit.project_rules`.

The engine is stdlib-only (``ast`` + ``tokenize``): it runs in a CI
job with no dependencies installed, and ``tools/lint.py`` can load it
without importing the numpy-heavy ``repro`` package init.  Findings
are suppressible per line (``# reprolint: disable=RPL003``) or per
file (``# reprolint: disable-file=RPL002``), and grandfathered
findings live in a committed content-fingerprint baseline
(``tools/reprolint_baseline.json``).  See docs/LINTING.md for the
rule catalog and workflows.

Entry points::

    python -m repro.lintkit                 # check the repo, exit 1 on findings
    python -m repro.lintkit src/repro/core  # explicit paths (pre-commit)
    python -m repro.lintkit --project       # whole-program pass (RPL101-104)
    python -m repro.lintkit --project --graph callgraph.json
    python -m repro.lintkit --json out.json # machine-readable report
    python -m repro.lintkit --write-baseline
    make lint / make lint-baseline
"""

from repro.lintkit.baseline import (
    apply_baseline,
    fingerprint,
    load_baseline,
    render_baseline,
    write_baseline,
)
from repro.lintkit.callgraph import CallGraph, find_entry_points
from repro.lintkit.cli import main as cli_main
from repro.lintkit.dataflow import ProjectSummary, analyze_project
from repro.lintkit.engine import (
    Finding,
    LintResult,
    SourceModule,
    check_file,
    check_source,
    iter_python_files,
    module_name_for,
    run,
    run_project,
)
from repro.lintkit.modgraph import ModuleGraph
from repro.lintkit.project_rules import (
    PROJECT_RULES,
    ProjectRule,
    run_project_rules,
)
from repro.lintkit.report import render_json, render_text
from repro.lintkit.rules import RULES, Rule, rule_catalog

__all__ = [
    "CallGraph",
    "Finding",
    "LintResult",
    "ModuleGraph",
    "PROJECT_RULES",
    "ProjectRule",
    "ProjectSummary",
    "RULES",
    "Rule",
    "SourceModule",
    "analyze_project",
    "apply_baseline",
    "check_file",
    "check_source",
    "cli_main",
    "find_entry_points",
    "fingerprint",
    "iter_python_files",
    "load_baseline",
    "module_name_for",
    "render_baseline",
    "render_json",
    "render_text",
    "rule_catalog",
    "run",
    "run_project",
    "run_project_rules",
    "write_baseline",
]
