"""The reprolint engine: parse, suppress, dispatch to rules.

Stdlib-only on purpose (``ast`` + ``tokenize``): the engine has to run
in environments where the simulator's numpy/scipy stack is not
installed — the dedicated CI lint job and bare development containers.

The unit of work is a :class:`SourceModule`: one parsed file plus the
derived facts every rule needs — the dotted module name (when the file
lives under a ``repro`` package directory), the import aliasing maps
used to resolve call targets like ``np.random.default_rng`` to their
canonical ``numpy.random.default_rng`` spelling, module-level string
constants (so ``os.environ.get(ENV_TRACE)`` resolves through the
constant), and the suppression comments.
"""

from __future__ import annotations

import ast
import dataclasses
import io
import os
import re
import tokenize
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

#: Directories scanned by default, mirroring ``tools/lint.py``.
DEFAULT_SCAN_DIRS = ("src", "tests", "benchmarks", "tools", "examples")

#: Directory names never descended into.
SKIP_DIRS = ("__pycache__", ".git", ".hypothesis", ".pytest_cache")

#: Code reserved for files that do not parse (not suppressible).
PARSE_ERROR_CODE = "RPL000"

_SUPPRESS_RE = re.compile(
    r"#\s*reprolint:\s*(disable(?:-file)?)\s*=\s*([A-Za-z0-9_,\s]+)"
)


@dataclasses.dataclass
class Finding:
    """One rule violation at a specific source location.

    Attributes:
        code: rule code (``RPL001`` ... / :data:`PARSE_ERROR_CODE`).
        path: file path relative to the scan root, ``/``-separated.
        line / col: 1-based line and 0-based column of the anchor node.
        message: human-readable explanation.
        content: the stripped source line — the baseline fingerprint
            component that survives line-number churn.
    """

    code: str
    path: str
    line: int
    col: int
    message: str
    content: str = ""

    def location(self) -> str:
        return "%s:%d:%d" % (self.path, self.line, self.col)


@dataclasses.dataclass
class SourceModule:
    """One parsed source file plus the facts rules need (see module doc)."""

    path: str
    relpath: str
    text: str
    lines: List[str]
    tree: ast.Module
    #: Dotted module name when under a ``repro`` package dir, else None.
    module: Optional[str]
    #: ``import numpy as np`` -> {"np": "numpy"}.
    import_aliases: Dict[str, str]
    #: ``from numpy.random import default_rng as rng`` -> {"rng": "numpy.random.default_rng"}.
    imported_names: Dict[str, str]
    #: Module-level ``NAME = "literal"`` string constants.
    constants: Dict[str, str]
    #: line number -> set of suppressed codes ("all" suppresses everything).
    line_suppressions: Dict[int, Set[str]]
    #: codes suppressed for the whole file.
    file_suppressions: Set[str]

    def line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def resolve(self, node: ast.AST) -> Optional[str]:
        """Canonical dotted name of a Name/Attribute chain, if resolvable.

        ``np.random.default_rng`` resolves to
        ``numpy.random.default_rng`` when the module did ``import numpy
        as np``; a bare ``default_rng`` resolves through ``from
        numpy.random import default_rng``.  Chains rooted in anything
        other than a plain name (calls, subscripts) do not resolve.
        """
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        root = node.id
        parts.reverse()
        base = self.import_aliases.get(root)
        if base is None:
            base = self.imported_names.get(root, root)
        return ".".join([base] + parts)

    def is_suppressed(self, finding: Finding) -> bool:
        for scope in (
            self.file_suppressions,
            self.line_suppressions.get(finding.line, ()),
        ):
            if finding.code in scope or "all" in scope:
                return True
        return False


@dataclasses.dataclass
class LintResult:
    """Outcome of one engine run.

    Attributes:
        findings: violations not suppressed and not in the baseline.
        baselined: count of findings absorbed by the baseline.
        suppressed: count of findings silenced by disable comments.
        stale_baseline: baseline entries that matched nothing (the
            violation was fixed — regenerate with ``--write-baseline``).
        files: number of files checked.
    """

    findings: List[Finding]
    baselined: int = 0
    suppressed: int = 0
    stale_baseline: List[Tuple[str, str, str]] = dataclasses.field(
        default_factory=list
    )
    files: int = 0

    @property
    def clean(self) -> bool:
        return not self.findings


def module_name_for(relpath: str) -> Optional[str]:
    """Dotted module name of a path under a ``repro`` package directory.

    ``src/repro/core/afr.py`` -> ``repro.core.afr``;
    ``src/repro/obs/__init__.py`` -> ``repro.obs``; paths with no
    ``repro`` component (tests, tools) -> ``None``.
    """
    parts = relpath.replace(os.sep, "/").split("/")
    if "repro" not in parts:
        return None
    start = len(parts) - 1 - parts[::-1].index("repro")
    tail = parts[start:]
    if not tail[-1].endswith(".py"):
        return None
    tail[-1] = tail[-1][: -len(".py")]
    if tail[-1] == "__init__":
        tail = tail[:-1]
    return ".".join(tail)


def _collect_suppressions(
    text: str,
) -> Tuple[Dict[int, Set[str]], Set[str]]:
    """Parse ``# reprolint: disable[-file]=...`` comments.

    Uses :mod:`tokenize` so comment-looking text inside string
    literals is ignored; falls back to a line scan when the file does
    not tokenize (the AST parse will report the real error).
    """
    comments: List[Tuple[int, str]] = []
    try:
        for token in tokenize.generate_tokens(io.StringIO(text).readline):
            if token.type == tokenize.COMMENT:
                comments.append((token.start[0], token.string))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        for lineno, line in enumerate(text.split("\n"), start=1):
            if "#" in line:
                comments.append((lineno, line[line.index("#"):]))
    per_line: Dict[int, Set[str]] = {}
    per_file: Set[str] = set()
    for lineno, comment in comments:
        match = _SUPPRESS_RE.search(comment)
        if not match:
            continue
        codes = {
            code.strip()
            for code in match.group(2).split(",")
            if code.strip()
        }
        if match.group(1) == "disable-file":
            per_file |= codes
        else:
            per_line.setdefault(lineno, set()).update(codes)
    return per_line, per_file


def _collect_imports(
    tree: ast.Module,
) -> Tuple[Dict[str, str], Dict[str, str]]:
    aliases: Dict[str, str] = {}
    names: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    aliases[alias.asname] = alias.name
                else:
                    top = alias.name.split(".")[0]
                    aliases[top] = top
        elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
            for alias in node.names:
                names[alias.asname or alias.name] = "%s.%s" % (
                    node.module,
                    alias.name,
                )
    return aliases, names


def _collect_constants(tree: ast.Module) -> Dict[str, str]:
    constants: Dict[str, str] = {}
    for node in tree.body:
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        if not isinstance(value, ast.Constant) or not isinstance(
            value.value, str
        ):
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                constants[target.id] = value.value
    return constants


def parse_source(
    text: str, relpath: str, path: Optional[str] = None
) -> Tuple[Optional[SourceModule], Optional[Finding]]:
    """Parse one file's text; returns ``(module, None)`` or ``(None, parse error)``."""
    relpath = relpath.replace(os.sep, "/")
    try:
        tree = ast.parse(text, filename=relpath)
    except SyntaxError as exc:
        return None, Finding(
            code=PARSE_ERROR_CODE,
            path=relpath,
            line=exc.lineno or 0,
            col=(exc.offset or 1) - 1,
            message="file does not parse: %s" % exc.msg,
        )
    per_line, per_file = _collect_suppressions(text)
    aliases, names = _collect_imports(tree)
    module = SourceModule(
        path=path or relpath,
        relpath=relpath,
        text=text,
        lines=text.split("\n"),
        tree=tree,
        module=module_name_for(relpath),
        import_aliases=aliases,
        imported_names=names,
        constants=_collect_constants(tree),
        line_suppressions=per_line,
        file_suppressions=per_file,
    )
    return module, None


def check_source(
    text: str,
    relpath: str,
    select: Optional[Sequence[str]] = None,
) -> Tuple[List[Finding], int]:
    """Check one in-memory source; returns ``(findings, suppressed count)``."""
    from repro.lintkit.rules import RULES

    module, parse_error = parse_source(text, relpath)
    if parse_error is not None:
        return [parse_error], 0
    assert module is not None
    findings: List[Finding] = []
    suppressed = 0
    for code in sorted(RULES):
        if select is not None and code not in select:
            continue
        rule = RULES[code]
        if not rule.applies(module):
            continue
        for finding in rule.check(module):
            finding.content = module.line_text(finding.line)
            if module.is_suppressed(finding):
                suppressed += 1
            else:
                findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return findings, suppressed


def check_file(
    path: str, root: str, select: Optional[Sequence[str]] = None
) -> Tuple[List[Finding], int]:
    """Check one on-disk file (see :func:`check_source`)."""
    relpath = os.path.relpath(path, root)
    try:
        with open(path, "rb") as handle:
            raw = handle.read()
    except OSError as exc:
        return (
            [
                Finding(
                    code=PARSE_ERROR_CODE,
                    path=relpath.replace(os.sep, "/"),
                    line=0,
                    col=0,
                    message="unreadable: %s" % exc,
                )
            ],
            0,
        )
    try:
        text = raw.decode("utf-8")
    except UnicodeDecodeError as exc:
        return (
            [
                Finding(
                    code=PARSE_ERROR_CODE,
                    path=relpath.replace(os.sep, "/"),
                    line=0,
                    col=0,
                    message="not valid UTF-8: %s" % exc,
                )
            ],
            0,
        )
    return check_source(text, relpath, select=select)


def iter_python_files(root: str, paths: Sequence[str]) -> Iterable[str]:
    """Yield ``.py`` files under ``paths`` (files or directories).

    ``__pycache__`` (and other :data:`SKIP_DIRS`) are pruned and only
    real ``.py`` sources are yielded, so compiled ``.pyc`` droppings
    never reach the parser.
    """
    for base in paths:
        target = base if os.path.isabs(base) else os.path.join(root, base)
        if os.path.isfile(target):
            if target.endswith(".py"):
                yield target
            continue
        for dirpath, dirnames, filenames in os.walk(target):
            dirnames[:] = sorted(
                d
                for d in dirnames
                if d not in SKIP_DIRS and not d.startswith(".")
            )
            for name in sorted(filenames):
                if name.endswith(".py"):
                    yield os.path.join(dirpath, name)


def run(
    root: str,
    paths: Optional[Sequence[str]] = None,
    baseline: Optional[Dict[Tuple[str, str, str], int]] = None,
    select: Optional[Sequence[str]] = None,
) -> LintResult:
    """Check a tree and apply the baseline; the engine's main entry.

    Args:
        root: directory findings are reported relative to.
        paths: files/dirs to scan (default: the
            :data:`DEFAULT_SCAN_DIRS` that exist under ``root``).
        baseline: loaded baseline multiset (see
            :mod:`repro.lintkit.baseline`); ``None`` skips filtering.
        select: restrict to these rule codes.
    """
    from repro.lintkit.baseline import apply_baseline
    from repro.lintkit.rules import RULES

    if paths is None:
        paths = [
            d
            for d in DEFAULT_SCAN_DIRS
            if os.path.isdir(os.path.join(root, d))
        ]
    result = LintResult(findings=[])
    scanned: Set[str] = set()
    for path in iter_python_files(root, paths):
        scanned.add(os.path.relpath(path, root).replace(os.sep, "/"))
        findings, suppressed = check_file(path, root, select=select)
        result.findings.extend(findings)
        result.suppressed += suppressed
        result.files += 1
    result.findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    if baseline is not None:
        # A baseline entry can only be proven stale by a run that
        # executed its rule over its file: explicit-path invocations
        # must not report entries of unscanned files, and the per-file
        # pass must not report project-rule (RPL1xx) entries.
        executed = set(select) if select is not None else set(RULES)
        executed.add(PARSE_ERROR_CODE)
        kept, baselined, stale = apply_baseline(
            result.findings,
            baseline,
            relevant=lambda key: key[0] in executed and key[1] in scanned,
        )
        result.findings = kept
        result.baselined = baselined
        result.stale_baseline = stale
    return result


def run_project(
    root: str,
    baseline: Optional[Dict[Tuple[str, str, str], int]] = None,
    select: Optional[Sequence[str]] = None,
    package_dirs: Optional[Sequence[str]] = None,
):
    """Run the whole-program pass (RPL101-RPL104) over ``root``.

    Builds the module graph, dataflow summaries, and call graph (see
    :mod:`repro.lintkit.modgraph` et al.), runs the project rules, and
    applies the shared baseline scoped to the executed project codes.

    Returns ``(LintResult, ProjectContext)`` — the context carries the
    graphs for the ``--graph`` export.
    """
    from repro.lintkit.baseline import apply_baseline
    from repro.lintkit.modgraph import ModuleGraph
    from repro.lintkit.project_rules import PROJECT_RULES, run_project_rules

    graph = ModuleGraph.load(root, package_dirs=package_dirs)
    findings, suppressed, ctx = run_project_rules(graph, select=select)
    for error in graph.parse_errors:
        findings.append(error)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    result = LintResult(
        findings=findings,
        suppressed=suppressed,
        files=len(graph.modules) + len(graph.parse_errors),
    )
    if baseline is not None:
        executed = (
            set(select) if select is not None else set(PROJECT_RULES)
        )
        executed.add(PARSE_ERROR_CODE)
        analyzed = {
            info.source.relpath for info in graph.modules.values()
        }
        kept, baselined, stale = apply_baseline(
            result.findings,
            baseline,
            relevant=lambda key: key[0] in executed and key[1] in analyzed,
        )
        result.findings = kept
        result.baselined = baselined
        result.stale_baseline = stale
    return result, ctx
