"""Cross-module rules (RPL101-RPL104): whole-program invariants.

These rules consume the :class:`~repro.lintkit.modgraph.ModuleGraph`,
the :mod:`~repro.lintkit.dataflow` summaries, and the
:class:`~repro.lintkit.callgraph.CallGraph` — facts no single file can
provide.  They guard the reproduction's three load-bearing
cross-module contracts:

* **RPL101 cache-key soundness** — every config attribute and
  environment variable that can influence a simulation result must be
  folded into ``Job.canonical()``; otherwise two differently-configured
  runs share a cache address and silently cross-serve results (the
  PR 7 engine-token and PR 10 hazard-token bug class).
* **RPL102 fork-safety** — module-level mutable state in any module a
  worker task can import must be fork-aware (``os.register_at_fork``
  or reset in an ``adopt``/``fork``-named hook) or allowlisted with a
  rationale; otherwise state mutated in the parent leaks into forked
  workers nondeterministically.
* **RPL103 import-time environment reads** — ``envvars.get*`` at
  module scope freezes the value at import; workers and tests never
  see later overrides.
* **RPL104 engine-dispatch discipline** — the two simulation engines
  are statistically, not byte, equivalent; every construction must go
  through ``make_engine`` so the ``REPRO_VECTOR_ENGINE`` switch (and
  its cache token) stays authoritative.

Allowlists are deliberate: every entry names its rationale, and new
entries are a reviewed diff, exactly like the fingerprint baseline.
"""

from __future__ import annotations

import re
from typing import Dict, Iterator, List, Optional, Tuple, Type

from repro.lintkit.callgraph import CallGraph, find_entry_points
from repro.lintkit.dataflow import (
    ProjectSummary,
    analyze_project,
    is_fork_hook_name,
)
from repro.lintkit.engine import Finding
from repro.lintkit.modgraph import ModuleGraph

#: code -> rule instance; populated by :func:`register_project`.
PROJECT_RULES: Dict[str, "ProjectRule"] = {}

#: Bare names that anchor the RPL101 reachability analysis.  Matching
#: by name (not path) keeps the anchor through file moves; losing every
#: anchor is itself reported, so the rule can never silently go blind.
ENTRY_POINT_NAMES = ("run_scenario", "execute_job")

#: Environment variables that may be read on the simulation path
#: without appearing in ``Job.canonical()`` — each with the reason it
#: cannot change a cached result's *content*.
CACHE_NEUTRAL_ENVVARS: Dict[str, str] = {
    "REPRO_CACHE_DIR": "where results are stored, not what they contain",
    "REPRO_LEGACY_EVENTS": (
        "toggles materializing the legacy .events list view; the event "
        "table underneath is byte-identical either way"
    ),
    "REPRO_SHARD_SPILL_DIR": "spill location for shard merge scratch files",
    "REPRO_TRACE_WORKERS": (
        "whether forked workers emit trace spans; telemetry only, "
        "never feeds the simulation"
    ),
}

#: Module-level mutable globals that are fork-safe by design.
FORK_SAFE_GLOBALS: Dict[str, str] = {
    "repro.runtime.jobs._WORKER_RUNTIMES": (
        "per-process memo keyed by the full runtime config; a forked "
        "child either finds the right entry or rebuilds it"
    ),
    "repro.failures.backends._CACHE": (
        "resolve() memo keyed by the backend spec string; values are "
        "immutable backends, so inherited entries stay correct"
    ),
    "repro.experiments.base.EXPERIMENTS": (
        "experiment registry written only by import-time decorators"
    ),
    "repro.obs.OBSERVER": (
        "process-wide observer slot; workers install their own via "
        "Tracer.adopt on fork"
    ),
}

#: Engine / injector classes whose direct construction RPL104 polices.
ENGINE_CLASS_NAMES = (
    "SimulationEngine",
    "VectorSimulationEngine",
    "FailureInjector",
    "VectorFailureInjector",
)

#: The one blessed dispatch function.
ENGINE_FACTORY_NAME = "make_engine"

_FIELD_TOKEN_RE = re.compile(r"([A-Za-z_][A-Za-z0-9_]*)=")


class ProjectContext:
    """Everything a project rule consumes, built once per run."""

    def __init__(self, graph: ModuleGraph) -> None:
        self.graph = graph
        self.summary: ProjectSummary = analyze_project(graph)
        self.callgraph = CallGraph(self.summary)

    def finding(
        self, code: str, module: str, line: int, col: int, message: str
    ) -> Optional[Finding]:
        """A finding anchored in ``module``, or None if unlocatable."""
        info = self.graph.modules.get(module)
        if info is None:
            return None
        return Finding(
            code=code,
            path=info.source.relpath,
            line=line,
            col=col,
            message=message,
            content=info.source.line_text(line),
        )


def register_project(cls: Type["ProjectRule"]) -> Type["ProjectRule"]:
    rule = cls()
    if rule.code in PROJECT_RULES:
        raise ValueError("duplicate project rule code %s" % rule.code)
    PROJECT_RULES[rule.code] = rule
    return cls


class ProjectRule:
    """Base class: one cross-module invariant, one code."""

    code: str = ""
    title: str = ""
    rationale: str = ""

    def check(self, ctx: ProjectContext) -> Iterator[Finding]:
        raise NotImplementedError


@register_project
class CacheKeySoundness(ProjectRule):
    """RPL101: config influence missing from ``Job.canonical()``."""

    code = "RPL101"
    title = "config read on the simulation path missing from Job.canonical()"
    rationale = (
        "Results are content-addressed by Job.canonical(); a config "
        "attribute or environment variable read (transitively) from a "
        "simulation entry point but absent from the canonical string "
        "lets two differently-configured runs share a cache address "
        "and cross-serve stale results."
    )

    def check(self, ctx: ProjectContext) -> Iterator[Finding]:
        summary = ctx.summary
        cache_classes = [
            cls
            for cls in summary.classes.values()
            if cls.has_method("canonical")
        ]
        if not cache_classes:
            return
        entries = find_entry_points(summary, ENTRY_POINT_NAMES)
        if not entries:
            # The anchor is load-bearing: with no entry points the rule
            # would silently pass on everything, so losing them is
            # itself a violation (re-anchor ENTRY_POINT_NAMES).
            for cls in sorted(cache_classes, key=lambda c: c.qualname):
                finding = ctx.finding(
                    self.code,
                    cls.module,
                    cls.line,
                    0,
                    "cache-key class %s found but no simulation entry "
                    "points (%s) exist; RPL101 reachability is unanchored"
                    % (cls.name, "/".join(ENTRY_POINT_NAMES)),
                )
                if finding is not None:
                    yield finding
            return
        reachable = ctx.callgraph.reachable(entries)
        # One token set per cache-key class: field names mentioned as
        # `field=` plus every string (environment names appear as the
        # envvars.get*() literal arguments inside canonical()).
        tokens: Dict[str, set] = {}
        texts: Dict[str, str] = {}
        for cls in cache_classes:
            canonical = cls.methods["canonical"]
            mentioned = set()
            for text in canonical.strings:
                mentioned.update(_FIELD_TOKEN_RE.findall(text))
            tokens[cls.qualname] = mentioned
            texts[cls.qualname] = "\n".join(canonical.strings)
        fields = {cls.qualname: set(cls.fields) for cls in cache_classes}
        seen = set()
        for qualname in sorted(reachable):
            fn = summary.functions.get(qualname)
            if fn is None:
                continue
            for read in fn.attr_reads:
                if read.cls not in tokens:
                    continue
                if read.attr not in fields[read.cls]:
                    continue  # method access, not config state
                if read.attr in tokens[read.cls]:
                    continue
                key = (read.cls, read.attr)
                if key in seen:
                    continue
                seen.add(key)
                finding = ctx.finding(
                    self.code,
                    fn.module,
                    read.line,
                    read.col,
                    "%s.%s is read on the simulation path (in %s) but "
                    "never appears as '%s=' in %s.canonical(); add it "
                    "or the cache will cross-serve results"
                    % (
                        read.cls.rsplit(".", 1)[-1],
                        read.attr,
                        qualname,
                        read.attr,
                        read.cls.rsplit(".", 1)[-1],
                    ),
                )
                if finding is not None:
                    yield finding
            for read in fn.env_reads:
                if read.name in CACHE_NEUTRAL_ENVVARS:
                    continue
                if any(read.name in text for text in texts.values()):
                    continue
                key = ("env", read.name, qualname)
                if key in seen:
                    continue
                seen.add(key)
                finding = ctx.finding(
                    self.code,
                    fn.module,
                    read.line,
                    read.col,
                    "environment variable %s is read on the simulation "
                    "path (in %s) but is neither folded into canonical() "
                    "nor allowlisted as cache-neutral"
                    % (read.name, qualname),
                )
                if finding is not None:
                    yield finding


@register_project
class ForkSafety(ProjectRule):
    """RPL102: fork-hostile module state reachable from worker tasks."""

    code = "RPL102"
    title = "mutable module state reachable from worker tasks is not fork-aware"
    rationale = (
        "WorkerPool forks; module-level mutable state importable from "
        "a worker task is copied at fork time and then diverges "
        "silently.  Such state must be reset via os.register_at_fork "
        "or an adopt/fork hook, or allowlisted with a rationale."
    )

    def check(self, ctx: ProjectContext) -> Iterator[Finding]:
        summary = ctx.summary
        tasks = summary.worker_tasks()
        if not tasks:
            return
        task_modules = {
            module
            for module in (
                ctx.graph.module_of(task) for task in tasks
            )
            if module is not None
        }
        candidates = ctx.graph.reachable_modules(sorted(task_modules))
        for module in sorted(candidates):
            ms = summary.modules.get(module)
            if ms is None or ms.fork_aware:
                continue
            for name in sorted(ms.globals):
                var = ms.globals[name]
                if var.qualname in FORK_SAFE_GLOBALS:
                    continue
                mutations = [
                    (line, fn)
                    for line, fn in ms.mutations.get(var.qualname, [])
                    if not is_fork_hook_name(fn.rsplit(".", 1)[-1])
                ]
                if var.kind == "handle":
                    message = (
                        "module-level %s is a lock/handle; forked workers "
                        "inherit a broken copy — create it lazily per "
                        "process or reset it via os.register_at_fork"
                        % var.name
                    )
                elif mutations:
                    lines = ", ".join(
                        "%s:%d" % (fn.rsplit(".", 1)[-1], line)
                        for line, fn in sorted(mutations)[:3]
                    )
                    message = (
                        "module-level %s is mutated at runtime (%s) and is "
                        "importable from worker tasks (%s); reset it via "
                        "os.register_at_fork / an adopt hook or allowlist "
                        "it with a rationale"
                        % (var.name, lines, ", ".join(sorted(tasks)))
                    )
                else:
                    continue
                finding = ctx.finding(
                    self.code, module, var.line, var.col, message
                )
                if finding is not None:
                    yield finding


@register_project
class ImportTimeEnvRead(ProjectRule):
    """RPL103: ``envvars.get*`` executed at module scope."""

    code = "RPL103"
    title = "environment variable read at import time"
    rationale = (
        "A module-scope envvars.get*() freezes the value when the "
        "module is first imported; envvars.override() in tests and "
        "late exports in workers are silently ignored.  Read inside "
        "the function that needs the value."
    )

    def check(self, ctx: ProjectContext) -> Iterator[Finding]:
        for module in sorted(ctx.summary.modules):
            ms = ctx.summary.modules[module]
            for read in ms.module_env_reads:
                finding = ctx.finding(
                    self.code,
                    module,
                    read.line,
                    read.col,
                    "%s is read at module scope; the value freezes at "
                    "import and overrides never apply — move the read "
                    "into the consuming function" % read.name,
                )
                if finding is not None:
                    yield finding


@register_project
class EngineDispatch(ProjectRule):
    """RPL104: engine construction outside ``make_engine``."""

    code = "RPL104"
    title = "engine constructed directly instead of via make_engine()"
    rationale = (
        "The two engines are statistically, not byte, equivalent; "
        "make_engine() is the single point where REPRO_VECTOR_ENGINE "
        "selects one and the cache token records the choice.  Direct "
        "construction elsewhere bypasses both."
    )

    def check(self, ctx: ProjectContext) -> Iterator[Finding]:
        summary = ctx.summary
        engine_classes = {
            qualname
            for qualname, cls in summary.classes.items()
            if cls.name in ENGINE_CLASS_NAMES
        }
        if not engine_classes:
            return
        emitted = set()
        for qualname in sorted(summary.functions):
            fn = summary.functions[qualname]
            module_summary = summary.modules.get(fn.module)
            if module_summary is not None and any(
                cls.name in ENGINE_CLASS_NAMES
                for cls in module_summary.classes.values()
            ):
                continue  # defining modules wire their own parts
            if (
                module_summary is not None
                and ENGINE_FACTORY_NAME in module_summary.functions
            ):
                continue  # the factory module itself
            for site in fn.calls:
                if site.target is None:
                    continue
                target = ctx.graph.canonicalize(site.target)
                if target not in engine_classes:
                    continue
                key = (fn.module, site.line)
                if key in emitted:
                    continue
                emitted.add(key)
                finding = ctx.finding(
                    self.code,
                    fn.module,
                    site.line,
                    0,
                    "%s is constructed directly in %s; route through "
                    "make_engine() so the engine switch and its cache "
                    "token stay authoritative"
                    % (target.rsplit(".", 1)[-1], qualname),
                )
                if finding is not None:
                    yield finding


def project_rule_catalog() -> List[Tuple[str, str, str]]:
    """(code, title, rationale) rows, sorted by code."""
    return [
        (rule.code, rule.title, rule.rationale)
        for code, rule in sorted(PROJECT_RULES.items())
    ]


def run_project_rules(
    graph: ModuleGraph,
    select: Optional[List[str]] = None,
) -> Tuple[List[Finding], int, ProjectContext]:
    """Run the project rules over ``graph``.

    Returns ``(findings, suppressed count, context)`` — the context is
    handed back so the CLI can export the call graph without a second
    analysis pass.
    """
    ctx = ProjectContext(graph)
    by_relpath = {
        info.source.relpath: info.source for info in graph.modules.values()
    }
    findings: List[Finding] = []
    suppressed = 0
    for code in sorted(PROJECT_RULES):
        if select is not None and code not in select:
            continue
        rule = PROJECT_RULES[code]
        for finding in rule.check(ctx):
            source = by_relpath.get(finding.path)
            if source is not None and source.is_suppressed(finding):
                suppressed += 1
            else:
                findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return findings, suppressed, ctx


__all__ = [
    "CACHE_NEUTRAL_ENVVARS",
    "ENGINE_CLASS_NAMES",
    "ENTRY_POINT_NAMES",
    "FORK_SAFE_GLOBALS",
    "PROJECT_RULES",
    "ProjectContext",
    "ProjectRule",
    "project_rule_catalog",
    "register_project",
    "run_project_rules",
]
