"""Project module graph: import resolution over the ``repro`` package.

The whole-program rules (RPL101-RPL104, see
:mod:`repro.lintkit.project_rules`) need facts no single file can
provide: which module a name *canonically* lives in (chasing
re-exports like ``from repro.simulate import make_engine`` back to
``repro.simulate.vector.engine.make_engine``), which modules a worker
entry point transitively imports, and where a dotted call target is
defined.  :class:`ModuleGraph` supplies exactly that — built purely
from source text (``ast``), never by importing the analyzed code, so
the analyzer runs in the dependency-free CI lint job.

Name resolution is *approximate by construction*: it tracks straight
``import``/``from``-import bindings (absolute and relative), top-level
definitions, and re-export chains.  Dynamic tricks (``__getattr__``,
``globals()[...]``, star imports) resolve to nothing, which the rules
treat as "not a project symbol".
"""

from __future__ import annotations

import ast
import dataclasses
import os
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.lintkit.engine import (
    Finding,
    SourceModule,
    iter_python_files,
    parse_source,
)

#: Package directories a project scan loads, relative to the root.
DEFAULT_PACKAGE_DIRS = (os.path.join("src", "repro"),)

#: Re-export chains longer than this are cycles; stop resolving.
_MAX_CHASE = 16


@dataclasses.dataclass
class ModuleInfo:
    """One project module: parsed source plus resolution tables.

    Attributes:
        name: dotted module name (``repro.simulate.scenario``).
        source: the parsed :class:`SourceModule`.
        is_package: whether the file is an ``__init__.py``.
        bindings: local name -> dotted target.  Covers imports
            (absolute and relative) and top-level definitions; a
            module's own symbol binds to itself (``f`` ->
            ``repro.mod.f``), which is the fixed point re-export
            chasing stops at.
        imports: project modules this file imports anywhere (module
            scope and function scope both count — workers resolve
            lazy imports at task time, so reachability must too).
    """

    name: str
    source: SourceModule
    is_package: bool
    bindings: Dict[str, str] = dataclasses.field(default_factory=dict)
    imports: Set[str] = dataclasses.field(default_factory=set)


class ModuleGraph:
    """All modules of one project package, with name resolution."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}
        #: Files that failed to parse (reported as RPL000 findings).
        self.parse_errors: List[Finding] = []

    # -- construction ------------------------------------------------

    @classmethod
    def from_sources(cls, sources: Dict[str, str]) -> "ModuleGraph":
        """Build a graph from in-memory ``{relpath: source}`` texts.

        The test-suite entry: seeded-mutation self-tests synthesize a
        miniature package and assert each rule fires on it.
        """
        graph = cls()
        for relpath in sorted(sources):
            graph._add_file(relpath, sources[relpath])
        graph._link()
        return graph

    @classmethod
    def load(
        cls, root: str, package_dirs: Optional[Sequence[str]] = None
    ) -> "ModuleGraph":
        """Build a graph from the package directories under ``root``."""
        graph = cls()
        dirs = [
            d
            for d in (package_dirs or DEFAULT_PACKAGE_DIRS)
            if os.path.isdir(os.path.join(root, d))
        ]
        for path in iter_python_files(root, dirs):
            relpath = os.path.relpath(path, root)
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    text = handle.read()
            except (OSError, UnicodeDecodeError) as exc:
                graph.parse_errors.append(
                    Finding(
                        code="RPL000",
                        path=relpath.replace(os.sep, "/"),
                        line=0,
                        col=0,
                        message="unreadable: %s" % exc,
                    )
                )
                continue
            graph._add_file(relpath, text)
        graph._link()
        return graph

    def _add_file(self, relpath: str, text: str) -> None:
        module, parse_error = parse_source(text, relpath)
        if parse_error is not None:
            self.parse_errors.append(parse_error)
            return
        assert module is not None
        if module.module is None:
            return  # not under a repro package directory
        self.modules[module.module] = ModuleInfo(
            name=module.module,
            source=module,
            is_package=relpath.replace(os.sep, "/").endswith("__init__.py"),
        )

    def _link(self) -> None:
        for info in self.modules.values():
            self._collect_bindings(info)

    def _relative_base(self, info: ModuleInfo, level: int) -> Optional[str]:
        """The package ``from ...`` resolves against, for ``level`` dots."""
        parts = info.name.split(".")
        if not info.is_package:
            parts = parts[:-1]  # plain modules resolve against their package
        drop = level - 1
        if drop > len(parts):
            return None
        if drop:
            parts = parts[:-drop]
        return ".".join(parts) if parts else None

    def _collect_bindings(self, info: ModuleInfo) -> None:
        bindings = info.bindings
        # Top-level definitions first: later import statements may
        # legitimately rebind a name, and last-wins matches Python.
        for node in info.source.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                bindings[node.name] = "%s.%s" % (info.name, node.name)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        bindings[target.id] = "%s.%s" % (info.name, target.id)
            elif isinstance(node, ast.AnnAssign) and isinstance(
                node.target, ast.Name
            ):
                bindings[node.target.id] = "%s.%s" % (info.name, node.target.id)
        for node in ast.walk(info.source.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        bindings[alias.asname] = alias.name
                    else:
                        top = alias.name.split(".")[0]
                        bindings.setdefault(top, top)
                    self._note_import(info, alias.name)
            elif isinstance(node, ast.ImportFrom):
                if node.level:
                    base = self._relative_base(info, node.level)
                    if base is None:
                        continue
                    if node.module:
                        base = "%s.%s" % (base, node.module)
                else:
                    base = node.module
                if base is None:
                    continue
                self._note_import(info, base)
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    target = "%s.%s" % (base, alias.name)
                    bindings[alias.asname or alias.name] = target
                    if target in self.modules:  # `from pkg import submodule`
                        self._note_import(info, target)

    def _note_import(self, info: ModuleInfo, dotted: str) -> None:
        """Record the project module ``dotted`` refers to, if any."""
        parts = dotted.split(".")
        for i in range(len(parts), 0, -1):
            prefix = ".".join(parts[:i])
            if prefix in self.modules:
                info.imports.add(prefix)
                return

    # -- resolution --------------------------------------------------

    def qualify(self, module: str, dotted: str) -> str:
        """Resolve a dotted usage inside ``module`` to a canonical name.

        ``make_engine`` used under ``from repro.simulate import
        make_engine`` resolves to
        ``repro.simulate.vector.engine.make_engine``.  Names the graph
        cannot place (builtins, external packages, local variables)
        come back unchanged.
        """
        info = self.modules.get(module)
        if info is None:
            return dotted
        parts = dotted.split(".")
        target = info.bindings.get(parts[0])
        if target is None:
            return dotted
        return self.canonicalize(".".join([target] + parts[1:]))

    def canonicalize(self, qualname: str, _depth: int = 0) -> str:
        """Chase re-export chains until a defining module is reached."""
        if _depth > _MAX_CHASE:
            return qualname
        parts = qualname.split(".")
        for i in range(len(parts), 0, -1):
            prefix = ".".join(parts[:i])
            info = self.modules.get(prefix)
            if info is None:
                continue
            rest = parts[i:]
            if not rest:
                return prefix
            bound = info.bindings.get(rest[0])
            own = "%s.%s" % (prefix, rest[0])
            if bound is not None and bound != own:
                return self.canonicalize(
                    ".".join([bound] + rest[1:]), _depth + 1
                )
            return qualname
        return qualname

    def module_of(self, qualname: str) -> Optional[str]:
        """The longest module prefix of a canonical qualname."""
        parts = qualname.split(".")
        for i in range(len(parts), 0, -1):
            prefix = ".".join(parts[:i])
            if prefix in self.modules:
                return prefix
        return None

    # -- reachability ------------------------------------------------

    def reachable_modules(self, roots: Iterable[str]) -> Set[str]:
        """Modules transitively imported from ``roots`` (inclusive)."""
        seen: Set[str] = set()
        stack = [name for name in roots if name in self.modules]
        while stack:
            name = stack.pop()
            if name in seen:
                continue
            seen.add(name)
            stack.extend(
                imported
                for imported in self.modules[name].imports
                if imported not in seen
            )
        return seen

    def to_json(self) -> Dict[str, object]:
        """Import-graph summary (part of the ``--graph`` export)."""
        return {
            "modules": {
                name: {
                    "path": info.source.relpath,
                    "imports": sorted(info.imports),
                }
                for name, info in sorted(self.modules.items())
            },
            "parse_errors": [f.location() for f in self.parse_errors],
        }


def resolve_annotation(
    graph: ModuleGraph, module: str, node: Optional[ast.expr]
) -> Optional[str]:
    """Canonical class name an annotation refers to, if resolvable.

    Unwraps ``Optional[X]``, ``X | None``, and quoted forward
    references; anything fancier resolves to ``None``.
    """
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return None
    if isinstance(node, ast.Subscript):  # Optional[X] / List[X] -> X
        inner = node.slice
        if isinstance(inner, ast.Tuple) and inner.elts:
            inner = inner.elts[0]
        return resolve_annotation(graph, module, inner)
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        for side in (node.left, node.right):
            if not (isinstance(side, ast.Constant) and side.value is None):
                return resolve_annotation(graph, module, side)
        return None
    parts: List[str] = []
    probe: ast.expr = node
    while isinstance(probe, ast.Attribute):
        parts.append(probe.attr)
        probe = probe.value
    if not isinstance(probe, ast.Name):
        return None
    parts.append(probe.id)
    parts.reverse()
    return graph.qualify(module, ".".join(parts))


__all__ = [
    "DEFAULT_PACKAGE_DIRS",
    "ModuleGraph",
    "ModuleInfo",
    "resolve_annotation",
]
