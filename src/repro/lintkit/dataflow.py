"""Lightweight dataflow facts per function, for the project rules.

For every function (and class body) in a :class:`ModuleGraph` this
pass records the facts the cross-module rules consume:

* **call sites** — resolved to canonical project names where name
  resolution allows, or kept as bare method names for the call graph's
  over-approximation (``obj.inject(...)`` with an unknown receiver
  links to *every* project method named ``inject``);
* **attribute reads** — ``job.scale`` where ``job`` is inferred (from
  parameter annotations, ``self``, or a visible constructor call) to
  be a project class: the raw material of the RPL101 cache-key check;
* **environment reads** — ``envvars.get*("REPRO_...")`` calls, with
  the module-scope ones split out (RPL103: workers never see overrides
  applied after import);
* **module-level mutable state** and every site that mutates it from
  function scope (RPL102 fork-safety), plus whether the module is
  fork-aware (``os.register_at_fork`` / an ``adopt`` hook);
* **worker task functions** — first arguments of ``.map(fn, ...)``
  calls that resolve to project functions (the fork boundary RPL102
  measures reachability from).

Everything is intraprocedural; propagation happens later along
:mod:`repro.lintkit.callgraph` edges.  The pass never imports the
analyzed code.
"""

from __future__ import annotations

import ast
import dataclasses
from typing import Dict, List, Optional, Set, Tuple

from repro.lintkit.modgraph import ModuleGraph, ModuleInfo, resolve_annotation

#: ``repro.envvars`` readers whose first argument names a variable.
ENVVAR_READERS = (
    "repro.envvars.get",
    "repro.envvars.get_flag",
    "repro.envvars.get_float",
    "repro.envvars.get_int",
)

#: Constructors whose module-level result is mutable *container* state
#: (flagged by RPL102 only when something mutates it at runtime).
_CONTAINER_CTORS = {
    "dict",
    "list",
    "set",
    "bytearray",
    "collections.defaultdict",
    "collections.OrderedDict",
    "collections.Counter",
    "collections.deque",
}

#: Constructors that are unconditionally fork-hostile at module level
#: (a lock or handle inherited across ``fork`` is broken even if no
#: project code ever mutates the binding).
_HANDLE_CTORS = {
    "threading.Lock",
    "threading.RLock",
    "threading.Condition",
    "threading.Semaphore",
    "threading.Event",
    "threading.local",
    "open",
    "io.open",
}

#: Method names that mutate their receiver in place.
_MUTATOR_METHODS = {
    "add",
    "append",
    "appendleft",
    "clear",
    "discard",
    "extend",
    "insert",
    "pop",
    "popitem",
    "remove",
    "setdefault",
    "update",
}

#: Functions whose body counts as a fork-reset hook: mutations housed
#: here make a global *fork-aware* instead of fork-hostile.
_FORK_HOOK_MARKERS = ("adopt", "fork", "reset")


@dataclasses.dataclass
class EnvRead:
    """One ``envvars.get*`` call with a statically-known variable name."""

    name: str
    line: int
    col: int
    module_scope: bool = False


@dataclasses.dataclass
class AttrRead:
    """One ``<obj>.<attr>`` load with an inferred project class."""

    cls: str
    attr: str
    line: int
    col: int


@dataclasses.dataclass
class CallSite:
    """One call: resolved canonical target, or a bare method name."""

    target: Optional[str]
    method: Optional[str]
    line: int


@dataclasses.dataclass
class FunctionSummary:
    """Dataflow facts of one function / method / class body."""

    qualname: str
    module: str
    name: str
    line: int
    calls: List[CallSite] = dataclasses.field(default_factory=list)
    attr_reads: List[AttrRead] = dataclasses.field(default_factory=list)
    env_reads: List[EnvRead] = dataclasses.field(default_factory=list)
    #: Every string literal in the body (RPL101 mines ``canonical()``
    #: bodies for ``field=`` tokens and ``REPRO_*`` mentions).
    strings: List[str] = dataclasses.field(default_factory=list)


@dataclasses.dataclass
class ClassSummary:
    """One class: fields, methods, bases, and its body pseudo-function."""

    qualname: str
    module: str
    name: str
    line: int
    bases: List[str] = dataclasses.field(default_factory=list)
    fields: List[str] = dataclasses.field(default_factory=list)
    methods: Dict[str, FunctionSummary] = dataclasses.field(default_factory=dict)
    body: Optional[FunctionSummary] = None

    def has_method(self, name: str) -> bool:
        return name in self.methods


@dataclasses.dataclass
class GlobalVar:
    """One module-level mutable binding (RPL102 candidate)."""

    qualname: str
    module: str
    name: str
    line: int
    col: int
    kind: str  # "container" | "handle" | "instance"


@dataclasses.dataclass
class ModuleSummary:
    """Dataflow facts of one module."""

    module: str
    functions: Dict[str, FunctionSummary] = dataclasses.field(default_factory=dict)
    classes: Dict[str, ClassSummary] = dataclasses.field(default_factory=dict)
    globals: Dict[str, GlobalVar] = dataclasses.field(default_factory=dict)
    #: canonical global qualname -> (line, enclosing function qualname).
    mutations: Dict[str, List[Tuple[int, str]]] = dataclasses.field(
        default_factory=dict
    )
    module_env_reads: List[EnvRead] = dataclasses.field(default_factory=list)
    fork_aware: bool = False
    #: Canonical names of functions handed to ``pool.map(fn, ...)``.
    worker_tasks: List[str] = dataclasses.field(default_factory=list)


@dataclasses.dataclass
class ProjectSummary:
    """The whole-program dataflow index the rules consume."""

    graph: ModuleGraph
    modules: Dict[str, ModuleSummary] = dataclasses.field(default_factory=dict)
    functions: Dict[str, FunctionSummary] = dataclasses.field(default_factory=dict)
    classes: Dict[str, ClassSummary] = dataclasses.field(default_factory=dict)
    #: bare method name -> canonical qualnames defining it.
    methods_by_name: Dict[str, List[str]] = dataclasses.field(default_factory=dict)
    #: canonical function qualname -> resolved return class, if any.
    returns: Dict[str, str] = dataclasses.field(default_factory=dict)

    def worker_tasks(self) -> List[str]:
        tasks: List[str] = []
        for summary in self.modules.values():
            tasks.extend(summary.worker_tasks)
        return sorted(set(tasks))


def analyze_project(graph: ModuleGraph) -> ProjectSummary:
    """Run the dataflow pass over every module of ``graph``."""
    project = ProjectSummary(graph=graph)
    analyzer = _Analyzer(graph, project)
    for name in sorted(graph.modules):
        analyzer.analyze_module(graph.modules[name])
    analyzer.finish()
    return project


class _Analyzer:
    def __init__(self, graph: ModuleGraph, project: ProjectSummary) -> None:
        self.graph = graph
        self.project = project
        # Deferred: return annotations resolve after all classes exist.
        self._returns: List[Tuple[str, str, ast.expr]] = []

    # -- module walk -------------------------------------------------

    def analyze_module(self, info: ModuleInfo) -> None:
        summary = ModuleSummary(module=info.name)
        self.project.modules[info.name] = summary
        for node in info.source.tree.body:
            self._module_statement(info, summary, node)
        # Facts that ignore scope: worker-task registration, fork hooks,
        # and mutations of module globals from any function body.
        for node in ast.walk(info.source.tree):
            if isinstance(node, ast.Call):
                self._check_fork_hook(info, summary, node)
                self._check_worker_task(info, summary, node)
        self._collect_mutations(info, summary)

    def _module_statement(
        self, info: ModuleInfo, summary: ModuleSummary, node: ast.stmt
    ) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self._add_function(info, summary, node, owner=None)
        elif isinstance(node, ast.ClassDef):
            self._add_class(info, summary, node)
        elif isinstance(node, (ast.Assign, ast.AnnAssign)):
            self._module_assignment(info, summary, node)
            self._scan_module_scope(info, summary, node)
        elif isinstance(node, (ast.If, ast.Try, ast.With, ast.For, ast.While)):
            # Conditional module-level code still runs at import time.
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.stmt):
                    self._module_statement(info, summary, child)
                else:
                    self._scan_module_scope(info, summary, child)
        else:
            self._scan_module_scope(info, summary, node)

    def _scan_module_scope(
        self, info: ModuleInfo, summary: ModuleSummary, node: ast.AST
    ) -> None:
        """Record import-time environment reads (outside any function)."""
        for child in _walk_scope(node):
            if isinstance(child, ast.Call):
                read = self._env_read(info, child)
                if read is not None:
                    read.module_scope = True
                    summary.module_env_reads.append(read)

    # -- functions and classes ---------------------------------------

    def _add_function(
        self,
        info: ModuleInfo,
        summary: ModuleSummary,
        node: ast.AST,
        owner: Optional[ClassSummary],
    ) -> FunctionSummary:
        if owner is not None:
            qualname = "%s.%s" % (owner.qualname, node.name)
        else:
            qualname = "%s.%s" % (info.name, node.name)
        fn = FunctionSummary(
            qualname=qualname,
            module=info.name,
            name=node.name,
            line=node.lineno,
        )
        env = self._parameter_types(info, node, owner)
        self._analyze_body(info, fn, node, env)
        if node.returns is not None:
            self._returns.append((qualname, info.name, node.returns))
        if owner is not None:
            owner.methods[node.name] = fn
            self.project.methods_by_name.setdefault(node.name, []).append(
                qualname
            )
        else:
            summary.functions[node.name] = fn
        self.project.functions[qualname] = fn
        return fn

    def _add_class(
        self, info: ModuleInfo, summary: ModuleSummary, node: ast.ClassDef
    ) -> None:
        qualname = "%s.%s" % (info.name, node.name)
        cls = ClassSummary(
            qualname=qualname,
            module=info.name,
            name=node.name,
            line=node.lineno,
            bases=[
                resolved
                for base in node.bases
                for resolved in [resolve_annotation(self.graph, info.name, base)]
                if resolved is not None
            ],
        )
        body = FunctionSummary(
            qualname="%s.<body>" % qualname,
            module=info.name,
            name="<body>",
            line=node.lineno,
        )
        for child in node.body:
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._add_function(info, summary, child, owner=cls)
            else:
                if isinstance(child, ast.AnnAssign) and isinstance(
                    child.target, ast.Name
                ):
                    cls.fields.append(child.target.id)
                elif isinstance(child, ast.Assign):
                    for target in child.targets:
                        if isinstance(target, ast.Name):
                            cls.fields.append(target.id)
                self._analyze_body(info, body, child, env={}, is_statement=True)
        init = cls.methods.get("__init__")
        if init is not None:
            for read in _self_assignments(init):
                if read not in cls.fields:
                    cls.fields.append(read)
        cls.body = body
        self.project.functions[body.qualname] = body
        summary.classes[node.name] = cls
        self.project.classes[qualname] = cls

    def _parameter_types(
        self,
        info: ModuleInfo,
        node: ast.AST,
        owner: Optional[ClassSummary],
    ) -> Dict[str, str]:
        env: Dict[str, str] = {}
        args = node.args
        for arg in list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs):
            resolved = resolve_annotation(self.graph, info.name, arg.annotation)
            if resolved is not None and resolved in self.project.classes:
                env[arg.arg] = resolved
            elif resolved is not None:
                env[arg.arg] = resolved  # may become a class later
        if owner is not None and (args.posonlyargs or args.args):
            first = (list(args.posonlyargs) + list(args.args))[0].arg
            env[first] = owner.qualname
        return env

    # -- body analysis -----------------------------------------------

    def _analyze_body(
        self,
        info: ModuleInfo,
        fn: FunctionSummary,
        node: ast.AST,
        env: Dict[str, str],
        is_statement: bool = False,
    ) -> None:
        """Walk one body, folding nested functions into the parent."""
        nodes = _walk_body(node) if not is_statement else _walk_body_stmt(node)
        env = dict(env)
        for child in nodes:
            if isinstance(child, ast.Assign) and isinstance(
                child.value, ast.Call
            ):
                inferred = self._inferred_call_class(info, child.value)
                if inferred is not None:
                    for target in child.targets:
                        if isinstance(target, ast.Name):
                            env[target.id] = inferred
            elif isinstance(child, ast.AnnAssign) and isinstance(
                child.target, ast.Name
            ):
                resolved = resolve_annotation(
                    self.graph, info.name, child.annotation
                )
                if resolved is not None:
                    env[child.target.id] = resolved
        for child in nodes:
            if isinstance(child, ast.Constant) and isinstance(child.value, str):
                fn.strings.append(child.value)
            elif isinstance(child, ast.Call):
                self._record_call(info, fn, child, env)
            elif isinstance(child, ast.Attribute) and isinstance(
                child.ctx, ast.Load
            ):
                if isinstance(child.value, ast.Name):
                    cls = env.get(child.value.id)
                    if cls is not None:
                        fn.attr_reads.append(
                            AttrRead(
                                cls=cls,
                                attr=child.attr,
                                line=child.lineno,
                                col=child.col_offset,
                            )
                        )

    def _inferred_call_class(
        self, info: ModuleInfo, call: ast.Call
    ) -> Optional[str]:
        """Class of ``x = C(...)`` / ``x = f(...)-> C``, if inferable."""
        target = self._resolve_callable(info, call.func)
        if target is None:
            return None
        if target in self.project.classes:
            return target
        return self.project.returns.get(target)

    def _resolve_callable(
        self, info: ModuleInfo, func: ast.expr
    ) -> Optional[str]:
        parts: List[str] = []
        probe = func
        while isinstance(probe, ast.Attribute):
            parts.append(probe.attr)
            probe = probe.value
        if not isinstance(probe, ast.Name):
            return None
        parts.append(probe.id)
        parts.reverse()
        resolved = self.graph.qualify(info.name, ".".join(parts))
        if resolved == ".".join(parts) and parts[0] not in info.bindings:
            return None  # local variable or builtin
        return resolved

    def _record_call(
        self,
        info: ModuleInfo,
        fn: FunctionSummary,
        call: ast.Call,
        env: Dict[str, str],
    ) -> None:
        read = self._env_read(info, call)
        if read is not None:
            fn.env_reads.append(read)
        target = self._resolve_callable(info, call.func)
        if target is not None:
            fn.calls.append(CallSite(target=target, method=None, line=call.lineno))
            return
        if isinstance(call.func, ast.Attribute):
            if isinstance(call.func.value, ast.Name):
                cls = env.get(call.func.value.id)
                if cls is not None:
                    fn.calls.append(
                        CallSite(
                            target="%s.%s" % (cls, call.func.attr),
                            method=None,
                            line=call.lineno,
                        )
                    )
                    return
            fn.calls.append(
                CallSite(target=None, method=call.func.attr, line=call.lineno)
            )

    def _env_read(self, info: ModuleInfo, call: ast.Call) -> Optional[EnvRead]:
        target = self._resolve_callable(info, call.func)
        if target not in ENVVAR_READERS or not call.args:
            return None
        arg = call.args[0]
        name: Optional[str] = None
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            name = arg.value
        elif isinstance(arg, ast.Name):
            name = info.source.constants.get(arg.id)
        if name is None:
            return None
        return EnvRead(name=name, line=call.lineno, col=call.col_offset)

    # -- module-level state ------------------------------------------

    def _module_assignment(
        self, info: ModuleInfo, summary: ModuleSummary, node: ast.stmt
    ) -> None:
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        if value is None:
            return
        kind = self._mutable_kind(info, value)
        if kind is None:
            return
        for target in targets:
            if not isinstance(target, ast.Name):
                continue
            qualname = "%s.%s" % (info.name, target.id)
            summary.globals[target.id] = GlobalVar(
                qualname=qualname,
                module=info.name,
                name=target.id,
                line=node.lineno,
                col=node.col_offset,
                kind=kind,
            )

    def _mutable_kind(self, info: ModuleInfo, value: ast.expr) -> Optional[str]:
        if isinstance(
            value,
            (ast.Dict, ast.List, ast.Set, ast.DictComp, ast.ListComp, ast.SetComp),
        ):
            return "container"
        if not isinstance(value, ast.Call):
            return None
        target = self._resolve_callable(info, value.func)
        if target is None and isinstance(value.func, ast.Name):
            target = value.func.id
        if target in _HANDLE_CTORS:
            return "handle"
        if target in _CONTAINER_CTORS:
            return "container"
        if target is not None and target in self.project.classes:
            return "instance"
        if (
            target is not None
            and self.graph.module_of(target) is not None
        ):
            return "instance"  # project call not yet indexed (forward ref)
        return None

    def _collect_mutations(
        self, info: ModuleInfo, summary: ModuleSummary
    ) -> None:
        """Find runtime mutations of module-level bindings, project-wide."""
        for node in info.source.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._collect_fn_mutations(info, summary, node, node.name)
            elif isinstance(node, ast.ClassDef):
                for child in node.body:
                    if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        self._collect_fn_mutations(
                            info,
                            summary,
                            child,
                            "%s.%s" % (node.name, child.name),
                        )

    def _collect_fn_mutations(
        self,
        info: ModuleInfo,
        summary: ModuleSummary,
        node: ast.AST,
        fn_name: str,
    ) -> None:
        fn_qualname = "%s.%s" % (info.name, fn_name)
        declared_global: Set[str] = set()
        for child in ast.walk(node):
            if isinstance(child, ast.Global):
                declared_global.update(child.names)
        for child in ast.walk(node):
            name: Optional[str] = None
            if isinstance(child, (ast.Assign, ast.AugAssign)):
                targets = (
                    child.targets
                    if isinstance(child, ast.Assign)
                    else [child.target]
                )
                for target in targets:
                    if isinstance(
                        target, (ast.Subscript, ast.Attribute)
                    ) and isinstance(target.value, ast.Name):
                        name = target.value.id
                    elif (
                        isinstance(target, ast.Name)
                        and target.id in declared_global
                    ):
                        name = target.id
            elif isinstance(child, ast.Delete):
                for target in child.targets:
                    if isinstance(target, ast.Subscript) and isinstance(
                        target.value, ast.Name
                    ):
                        name = target.value.id
            elif (
                isinstance(child, ast.Call)
                and isinstance(child.func, ast.Attribute)
                and child.func.attr in _MUTATOR_METHODS
                and isinstance(child.func.value, ast.Name)
            ):
                name = child.func.value.id
            if name is None:
                continue
            qualname = self.graph.qualify(info.name, name)
            if qualname == name:
                continue  # a local variable, not a module binding
            self.project.modules.setdefault(
                info.name, summary
            )
            mutations = (
                summary.mutations
                if self.graph.module_of(qualname) == info.name
                else self._foreign_mutations(qualname)
            )
            mutations.setdefault(qualname, []).append(
                (child.lineno, fn_qualname)
            )

    def _foreign_mutations(self, qualname: str):
        owner = self.graph.module_of(qualname)
        if owner is None:
            return {}  # throwaway dict: not project state
        owner_summary = self.project.modules.get(owner)
        if owner_summary is None:
            owner_summary = ModuleSummary(module=owner)
            self.project.modules[owner] = owner_summary
        return owner_summary.mutations

    # -- fork hooks and worker tasks ---------------------------------

    def _check_fork_hook(
        self, info: ModuleInfo, summary: ModuleSummary, call: ast.Call
    ) -> None:
        target = self._resolve_callable(info, call.func)
        if target == "os.register_at_fork":
            summary.fork_aware = True

    def _check_worker_task(
        self, info: ModuleInfo, summary: ModuleSummary, call: ast.Call
    ) -> None:
        if not (
            isinstance(call.func, ast.Attribute)
            and call.func.attr == "map"
            and call.args
        ):
            return
        target = self._resolve_callable(info, call.args[0])
        if target is None:
            return
        if self.graph.module_of(target) is not None:
            summary.worker_tasks.append(self.graph.canonicalize(target))

    # -- finish ------------------------------------------------------

    def finish(self) -> None:
        """Resolve deferred return annotations to project classes."""
        for qualname, module, annotation in self._returns:
            resolved = resolve_annotation(self.graph, module, annotation)
            if resolved is not None and resolved in self.project.classes:
                self.project.returns[qualname] = resolved


def is_fork_hook_name(name: str) -> bool:
    """Whether a function name marks a fork-reset hook (RPL102)."""
    lowered = name.lower()
    return any(marker in lowered for marker in _FORK_HOOK_MARKERS)


def _self_assignments(fn: FunctionSummary) -> List[str]:
    """Field names ``__init__`` assigns onto ``self`` (via attr reads).

    The body walk records ``self.x`` *loads*; stores are recovered from
    the summary's attribute reads union — good enough for field
    discovery because ``__init__`` conventionally reads what it sets.
    """
    return [read.attr for read in fn.attr_reads]


def _walk_body(node: ast.AST) -> List[ast.AST]:
    """All nodes of a function body, nested functions folded in."""
    found: List[ast.AST] = []
    for child in ast.walk(node):
        if child is not node:
            found.append(child)
    return found


def _walk_body_stmt(node: ast.AST) -> List[ast.AST]:
    return [node] + _walk_body(node)


def _walk_scope(node: ast.AST) -> List[ast.AST]:
    """Nodes of a statement excluding nested function/lambda bodies."""
    found: List[ast.AST] = []
    stack: List[ast.AST] = [node]
    while stack:
        current = stack.pop()
        found.append(current)
        if isinstance(
            current, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            continue
        stack.extend(ast.iter_child_nodes(current))
    return found


__all__ = [
    "AttrRead",
    "CallSite",
    "ClassSummary",
    "ENVVAR_READERS",
    "EnvRead",
    "FunctionSummary",
    "GlobalVar",
    "ModuleSummary",
    "ProjectSummary",
    "analyze_project",
    "is_fork_hook_name",
]
