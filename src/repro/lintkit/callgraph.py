"""Approximate project call graph built from dataflow summaries.

Nodes are the canonical function qualnames the dataflow pass indexed:
top-level functions, class methods, and per-class ``<body>``
pseudo-nodes (module-import-time work such as dataclass field
defaults).  Edges come in three strengths:

* **resolved** — the callee was a dotted name the module graph could
  place (``make_engine(...)``), a constructor (``Job(...)`` links to
  ``Job.__init__`` and ``Job.<body>``), or a method on a receiver with
  an inferred class (``engine.run()`` where ``engine = make_engine()``
  and ``make_engine`` is annotated ``-> SimulationEngine``);
* **ambiguous** — ``obj.m()`` with an unknown receiver links to
  *every* project method named ``m``.  Deliberate over-approximation:
  the rules do must-cover analysis (is this attribute read reachable?)
  where false edges cost noise but missing edges cost soundness.

No execution, no imports of the analyzed code — name resolution only.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, List, Set, Tuple

from repro.lintkit.dataflow import ProjectSummary


@dataclasses.dataclass
class Edge:
    """One call edge; ``ambiguous`` marks name-only method matches."""

    caller: str
    callee: str
    line: int
    ambiguous: bool = False


class CallGraph:
    """Adjacency over canonical function qualnames."""

    def __init__(self, project: ProjectSummary) -> None:
        self.project = project
        self.edges: List[Edge] = []
        self._out: Dict[str, List[Edge]] = {}
        self._build()

    def _add_edge(
        self, caller: str, callee: str, line: int, ambiguous: bool = False
    ) -> None:
        edge = Edge(caller=caller, callee=callee, line=line, ambiguous=ambiguous)
        self.edges.append(edge)
        self._out.setdefault(caller, []).append(edge)

    def _class_targets(self, qualname: str) -> List[str]:
        """Construction of a class runs ``__init__`` and the body."""
        cls = self.project.classes.get(qualname)
        if cls is None:
            return []
        targets = []
        if cls.body is not None:
            targets.append(cls.body.qualname)
        if "__init__" in cls.methods:
            targets.append(cls.methods["__init__"].qualname)
        return targets

    def _build(self) -> None:
        functions = self.project.functions
        for qualname, fn in functions.items():
            for site in fn.calls:
                if site.target is not None:
                    target = self.project.graph.canonicalize(site.target)
                    if target in functions:
                        self._add_edge(qualname, target, site.line)
                        continue
                    class_targets = self._class_targets(target)
                    if class_targets:
                        for callee in class_targets:
                            self._add_edge(qualname, callee, site.line)
                        continue
                    # `Class.method` on a class without that method may
                    # still be inherited; fall through to name matching
                    # with the bare method name.
                    method = target.rsplit(".", 1)[-1]
                else:
                    method = site.method
                if method is None:
                    continue
                for callee in self.project.methods_by_name.get(method, ()):
                    if callee != qualname:
                        self._add_edge(
                            qualname, callee, site.line, ambiguous=True
                        )

    def reachable(self, roots: Iterable[str]) -> Set[str]:
        """Function qualnames transitively callable from ``roots``."""
        seen: Set[str] = set()
        stack = [root for root in roots if root in self.project.functions]
        while stack:
            name = stack.pop()
            if name in seen:
                continue
            seen.add(name)
            for edge in self._out.get(name, ()):
                if edge.callee not in seen:
                    stack.append(edge.callee)
        return seen

    def to_json(self) -> Dict[str, object]:
        """The ``--graph callgraph.json`` export payload."""
        resolved = sum(1 for e in self.edges if not e.ambiguous)
        return {
            "nodes": sorted(self.project.functions),
            "edges": [
                {
                    "caller": e.caller,
                    "callee": e.callee,
                    "line": e.line,
                    "ambiguous": e.ambiguous,
                }
                for e in sorted(
                    self.edges, key=lambda e: (e.caller, e.callee, e.line)
                )
            ],
            "stats": {
                "functions": len(self.project.functions),
                "edges": len(self.edges),
                "resolved_edges": resolved,
                "ambiguous_edges": len(self.edges) - resolved,
            },
        }


def find_entry_points(
    project: ProjectSummary, names: Tuple[str, ...]
) -> List[str]:
    """Canonical qualnames of project functions with one of ``names``.

    Matches both top-level functions and methods, so renaming or
    moving an entry point keeps the anchor as long as the bare name
    survives.
    """
    found = [
        qualname
        for qualname, fn in project.functions.items()
        if fn.name in names
    ]
    return sorted(found)


__all__ = ["CallGraph", "Edge", "find_entry_points"]
