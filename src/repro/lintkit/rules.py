"""The reprolint ruleset: this repository's invariants, as AST checks.

Each rule is a small object with a code, a one-line title, a rationale
(rendered into docs/LINTING.md's catalog), a path-scope predicate
(:meth:`Rule.applies`), and a :meth:`Rule.check` walking one parsed
:class:`~repro.lintkit.engine.SourceModule`.  Registration happens at
import time through :func:`register`, so adding a rule is: write the
class, decorate it, document it.

Scoping is by *dotted module name* (``repro.core.afr``), derived from
the file path, so the same rules work on synthetic trees in tests as
long as the files sit under a ``repro/`` directory.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Tuple, Type

from repro.lintkit.engine import Finding, SourceModule

#: code -> rule instance; populated by :func:`register` at import time.
RULES: Dict[str, "Rule"] = {}


def register(cls: Type["Rule"]) -> Type["Rule"]:
    rule = cls()
    if rule.code in RULES:
        raise ValueError("duplicate rule code %s" % rule.code)
    RULES[rule.code] = rule
    return cls


class Rule:
    """Base class: one invariant, one code."""

    code: str = ""
    title: str = ""
    rationale: str = ""

    def applies(self, module: SourceModule) -> bool:
        """Whether this rule is in scope for ``module`` (default: all)."""
        return True

    def check(self, module: SourceModule) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self, module: SourceModule, node: ast.AST, message: str
    ) -> Finding:
        return Finding(
            code=self.code,
            path=module.relpath,
            line=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


def _in_repro(module: SourceModule) -> bool:
    name = module.module
    return name is not None and (
        name == "repro" or name.startswith("repro.")
    )


def _under(module: SourceModule, *prefixes: str) -> bool:
    name = module.module or ""
    return any(
        name == prefix or name.startswith(prefix + ".")
        for prefix in prefixes
    )


@register
class UnseededRng(Rule):
    """RPL001: RNG constructed without a seed."""

    code = "RPL001"
    title = "unseeded RNG construction"
    rationale = (
        "Byte-identical reruns are the repo's headline guarantee; every "
        "generator must derive from repro.rng.RandomSource or take an "
        "explicit seed. `np.random.default_rng()` / `random.Random()` "
        "with no arguments seed from the OS and break reproducibility."
    )

    #: Canonical constructors that must receive at least one argument.
    SEEDABLE = (
        "numpy.random.default_rng",
        "numpy.random.RandomState",
        "numpy.random.Generator",  # Generator(PCG64()) has args; bare is unseeded
        "random.Random",
        "random.SystemRandom",
    )

    def applies(self, module: SourceModule) -> bool:
        return _in_repro(module)

    def check(self, module: SourceModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            if node.args or node.keywords:
                continue
            target = module.resolve(node.func)
            if target in self.SEEDABLE:
                yield self.finding(
                    module,
                    node,
                    "%s() constructed without a seed; derive streams "
                    "from repro.rng.RandomSource (or pass an explicit "
                    "seed)" % target,
                )


@register
class WallClockRead(Rule):
    """RPL002: wall-clock read outside the instrumentation layers."""

    code = "RPL002"
    title = "wall-clock read in simulation/analysis code"
    rationale = (
        "Simulation and analysis must be pure functions of (spec, "
        "seed); the only time axis is repro.simulate.clock. Wall-clock "
        "reads are reserved to the instrumentation layers (repro.obs, "
        "repro.runtime) and explicitly suppressed timing blocks."
    )

    #: Modules allowed to read the wall clock.  Prefix-matched: the
    #: ``repro.obs`` entry deliberately covers the whole observability
    #: package — including ``repro.obs.sampler`` (resource timelines,
    #: heartbeats) and ``repro.obs.monitor`` (the live run monitor),
    #: whose clock reads are instrumentation, never simulation input —
    #: so new obs modules need no inline suppressions.
    ALLOWED_PREFIXES = ("repro.obs", "repro.runtime", "repro.lintkit")

    WALL_CLOCK = (
        "time.time",
        "time.time_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.process_time",
        "time.process_time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    )

    def applies(self, module: SourceModule) -> bool:
        return _in_repro(module) and not _under(
            module, *self.ALLOWED_PREFIXES
        )

    def check(self, module: SourceModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Attribute):
                target = module.resolve(node)
            elif isinstance(node, ast.Call) and isinstance(
                node.func, ast.Name
            ):
                target = module.resolve(node.func)
            else:
                continue
            if target in self.WALL_CLOCK:
                yield self.finding(
                    module,
                    node,
                    "%s reads the wall clock; simulation code must use "
                    "repro.simulate.clock.SimulationClock (instrumentation "
                    "belongs in repro.obs / repro.runtime)" % target,
                )


@register
class EventsMaterialization(Rule):
    """RPL003: ``.events`` list walking inside repro.core analyses."""

    code = "RPL003"
    title = ".events materialization in repro.core analysis code"
    rationale = (
        "The columnar EventTable (PR 5) keeps analyses vectorized; "
        "touching `.events` re-materializes per-event dataclasses and "
        "silently defeats it. Analysis modules aggregate over `.table` "
        "columns; the legacy list-walking bodies kept for the "
        "REPRO_LEGACY_EVENTS escape hatch are grandfathered in the "
        "committed baseline."
    )

    #: The modules that *implement* the event storage are exempt.
    EXEMPT = ("repro.core.dataset", "repro.core.columns")

    def applies(self, module: SourceModule) -> bool:
        return _under(module, "repro.core") and not _under(
            module, *self.EXEMPT
        )

    def check(self, module: SourceModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Attribute) or node.attr != "events":
                continue
            # A container reading its *own* events field (e.g. Burst
            # methods) is not dataset materialization.
            if isinstance(node.value, ast.Name) and node.value.id == "self":
                continue
            yield self.finding(
                module,
                node,
                "materializes `.events` inside a repro.core analysis "
                "module; aggregate over `.table` columns (EventTable) "
                "instead",
            )


@register
class RawEnvironRead(Rule):
    """RPL004: raw ``os.environ`` access to a ``REPRO_*`` variable."""

    code = "RPL004"
    title = "raw os.environ access to a REPRO_* variable"
    rationale = (
        "Every REPRO_* variable is declared once in repro.envvars "
        "(typed parse, documented default, generated docs table); "
        "scattered os.environ reads drift from the docs and skip the "
        "registry's typo check."
    )

    ENVIRON_CALLS = (
        "os.environ.get",
        "os.environ.setdefault",
        "os.environ.pop",
        "os.getenv",
    )

    def applies(self, module: SourceModule) -> bool:
        return _in_repro(module) and module.module != "repro.envvars"

    def _is_repro_key(
        self, module: SourceModule, node: Optional[ast.expr]
    ) -> bool:
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            return node.value.startswith("REPRO_")
        if isinstance(node, ast.Name):
            return module.constants.get(node.id, "").startswith("REPRO_")
        return False

    def check(self, module: SourceModule) -> Iterator[Finding]:
        message = (
            "raw os.environ access to a REPRO_* variable; read it "
            "through the repro.envvars registry"
        )
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                target = module.resolve(node.func)
                if (
                    target in self.ENVIRON_CALLS
                    and node.args
                    and self._is_repro_key(module, node.args[0])
                ):
                    yield self.finding(module, node, message)
            elif isinstance(node, ast.Subscript):
                if module.resolve(node.value) != "os.environ":
                    continue
                key = node.slice
                # py3.8 ast.Index compatibility is not needed (>=3.9).
                if self._is_repro_key(module, key):
                    yield self.finding(module, node, message)
            elif isinstance(node, ast.Compare):
                if len(node.comparators) != 1:
                    continue
                if not isinstance(node.ops[0], (ast.In, ast.NotIn)):
                    continue
                if module.resolve(
                    node.comparators[0]
                ) == "os.environ" and self._is_repro_key(module, node.left):
                    yield self.finding(module, node, message)


@register
class UnregisteredEnvVarRead(Rule):
    """RPL006: ``repro.envvars`` read of a name missing from the registry."""

    code = "RPL006"
    title = "envvars read of an unregistered REPRO_* name"
    rationale = (
        "repro.envvars.get raises KeyError for unregistered names, but "
        "only on the code path that actually reads the variable; a "
        "misspelled name in a rarely-taken branch ships silently. This "
        "rule cross-checks every literal name passed to the get/"
        "get_flag/get_float/get_int/override family against the "
        "registry at lint time."
    )

    READERS = (
        "repro.envvars.get",
        "repro.envvars.get_flag",
        "repro.envvars.get_float",
        "repro.envvars.get_int",
        "repro.envvars.override",
    )

    def applies(self, module: SourceModule) -> bool:
        return _in_repro(module) and module.module != "repro.envvars"

    def _registry(self):
        names = getattr(self, "_names", False)
        if names is False:
            try:
                # Stdlib-only and safe under tools/lint.py's stub parent
                # module (repro/__init__ never executes).
                from repro import envvars

                names = frozenset(envvars.REGISTRY)
            except ImportError:  # synthetic trees without the package
                names = None
            self._names = names
        return names

    def check(self, module: SourceModule) -> Iterator[Finding]:
        names = self._registry()
        if names is None:
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call) or not node.args:
                continue
            if module.resolve(node.func) not in self.READERS:
                continue
            arg = node.args[0]
            if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                name = arg.value
            elif isinstance(arg, ast.Name):
                name = module.constants.get(arg.id)
            else:
                continue
            if name and name not in names:
                yield self.finding(
                    module,
                    node,
                    "envvars read of %r, which is not in "
                    "repro.envvars.REGISTRY; register it (and rerun "
                    "`make docs`) or fix the name" % (name,),
                )


@register
class UnorderedFloatReduction(Rule):
    """RPL005: float reduction over unordered set iteration."""

    code = "RPL005"
    title = "float reduction over unordered set iteration"
    rationale = (
        "Float addition is not associative; summing over a set iterates "
        "in hash order, which PYTHONHASHSEED perturbs for strings — the "
        "same fleet can produce different low bits run to run. Reduce "
        "over a sorted or insertion-ordered sequence instead."
    )

    REDUCERS = (
        "sum",
        "math.fsum",
        "numpy.sum",
        "numpy.nansum",
        "numpy.mean",
        "numpy.prod",
    )

    def applies(self, module: SourceModule) -> bool:
        return _in_repro(module)

    def _is_unordered(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            return node.func.id in ("set", "frozenset")
        if isinstance(node, (ast.GeneratorExp, ast.ListComp)):
            return self._is_unordered(node.generators[0].iter)
        return False

    def check(self, module: SourceModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call) or not node.args:
                continue
            target = module.resolve(node.func)
            if target not in self.REDUCERS:
                continue
            if self._is_unordered(node.args[0]):
                yield self.finding(
                    module,
                    node,
                    "%s over a set iterates in hash order and makes the "
                    "float result run-dependent; reduce over sorted(...) "
                    "or an insertion-ordered sequence" % (target,),
                )


@register
class MutableDefaultArg(Rule):
    """RPL901: mutable default argument."""

    code = "RPL901"
    title = "mutable default argument"
    rationale = (
        "Default values are evaluated once at def time; a list/dict/set "
        "default is shared across calls and accumulates state."
    )

    def _mutable(self, node: Optional[ast.expr]) -> bool:
        if isinstance(
            node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp,
                   ast.SetComp)
        ):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            return node.func.id in ("list", "dict", "set", "bytearray")
        return False

    def check(self, module: SourceModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            defaults: List[Optional[ast.expr]] = list(node.args.defaults)
            defaults.extend(node.args.kw_defaults)
            for default in defaults:
                if default is not None and self._mutable(default):
                    yield self.finding(
                        module,
                        default,
                        "mutable default argument is shared across calls; "
                        "default to None and create inside the function",
                    )


@register
class BareExcept(Rule):
    """RPL902: bare ``except:`` clause."""

    code = "RPL902"
    title = "bare except clause"
    rationale = (
        "`except:` swallows KeyboardInterrupt/SystemExit and hides "
        "real defects; catch the narrowest exception that the handler "
        "can actually recover from."
    )

    def check(self, module: SourceModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                yield self.finding(
                    module,
                    node,
                    "bare `except:` catches SystemExit/KeyboardInterrupt; "
                    "name the exception (at minimum `except Exception`)",
                )


def rule_catalog() -> List[Tuple[str, str, str]]:
    """``(code, title, rationale)`` rows, sorted by code (docs/tests).

    Covers both registries: the per-file rules here and the
    whole-program rules (RPL101-RPL104) from
    :mod:`repro.lintkit.project_rules` — one catalog, one docs page.
    """
    from repro.lintkit.project_rules import project_rule_catalog

    rows = [
        (code, RULES[code].title, RULES[code].rationale)
        for code in sorted(RULES)
    ]
    rows.extend(project_rule_catalog())
    rows.sort(key=lambda row: row[0])
    return rows
