"""Package version, importable without triggering heavy imports."""

__version__ = "1.6.0"
