"""Evaluate a predict-and-replace maintenance policy on a history.

Protocol:

1. **Train** — build prediction samples whose observation times *and*
   label horizons lie before a cutoff (default: month 22 of 44), and
   fit the logistic model on them.
2. **Apply** — after the cutoff, score every in-service disk on a
   review grid (default every 14 days) using only information available
   at the review time.  A score above the action threshold flags the
   disk for proactive replacement.
3. **Score** — a flagged disk whose next *disk* failure occurs within
   the protection window counts as an **avoided failure** (the disk
   would have been swapped before it died); a flagged disk with no
   failure in the window is a **wasted replacement**.  Non-disk
   failures cannot be avoided by swapping the disk — the paper's whole
   point — and are reported separately as unavoidable.

The outcome quantifies the policy trade-off: precision of the pulls,
share of disk failures avoided, and the replacement overhead per
avoided failure.
"""

from __future__ import annotations

import bisect
import dataclasses
from typing import Dict, List, Tuple

import numpy as np

from repro.core.dataset import FailureDataset
from repro.errors import AnalysisError
from repro.failures.injector import InjectionResult
from repro.predict.features import FEATURE_NAMES, FeatureExtractor
from repro.predict.model import LogisticModel
from repro.units import SECONDS_PER_DAY, SECONDS_PER_MONTH


@dataclasses.dataclass(frozen=True)
class PolicyConfig:
    """Knobs of the proactive-replacement policy evaluation.

    Attributes:
        cutoff_months: train/apply split point within the study window.
        horizon_days: label horizon for training and the protection
            window for scoring flags.
        review_days: how often the policy reviews each disk.
        flag_budget_fraction: share of review points the policy may
            act on — the operational "we can pull at most so many
            disks" constraint.  The score threshold is set at the
            matching quantile, which also neutralizes the probability
            inflation from training-set negative subsampling.
        protection_days: window after a pull within which that disk's
            disk failure counts as avoided.
        grid_days: training-sample grid spacing.
        negative_ratio: training negatives kept per positive.
    """

    cutoff_months: float = 22.0
    horizon_days: float = 14.0
    review_days: float = 30.0
    flag_budget_fraction: float = 0.01
    protection_days: float = 30.0
    grid_days: float = 30.0
    negative_ratio: float = 5.0

    def __post_init__(self) -> None:
        if self.cutoff_months <= 0.0:
            raise AnalysisError("cutoff must be positive")
        if self.horizon_days <= 0.0 or self.review_days <= 0.0:
            raise AnalysisError("horizon and review period must be positive")
        if not 0.0 < self.flag_budget_fraction < 1.0:
            raise AnalysisError("flag budget must be in (0, 1)")


@dataclasses.dataclass(frozen=True)
class PolicyOutcome:
    """What the policy achieved on the held-out (post-cutoff) period.

    Attributes:
        flags: disks pulled proactively (first flag per disk counted).
        avoided_disk_failures: flags followed by that disk's disk
            failure within the protection window.
        wasted_replacements: flags with no such failure.
        disk_failures_after_cutoff: all disk failures in the apply
            period (the avoidable population).
        unavoidable_failures_after_cutoff: non-disk subsystem failures
            in the apply period (swapping disks cannot stop these).
        baseline_precision: precision a *random* policy of the same
            budget achieves (empirical, seeded) — the comparison that
            makes the absolute precision interpretable.
    """

    flags: int
    avoided_disk_failures: int
    wasted_replacements: int
    disk_failures_after_cutoff: int
    unavoidable_failures_after_cutoff: int
    baseline_precision: float

    @property
    def precision(self) -> float:
        """Share of pulls that actually preempted a disk failure."""
        return 0.0 if self.flags == 0 else self.avoided_disk_failures / self.flags

    @property
    def avoided_share(self) -> float:
        """Share of post-cutoff disk failures the policy preempted."""
        if self.disk_failures_after_cutoff == 0:
            return 0.0
        return self.avoided_disk_failures / self.disk_failures_after_cutoff

    @property
    def replacements_per_avoided(self) -> float:
        """Total pulls per avoided failure (cost of the policy)."""
        if self.avoided_disk_failures == 0:
            return float("inf")
        return self.flags / self.avoided_disk_failures

    @property
    def lift_over_random(self) -> float:
        """Precision relative to a random policy of the same budget."""
        if self.baseline_precision <= 0.0:
            return float("inf") if self.precision > 0.0 else 1.0
        return self.precision / self.baseline_precision

    def summary(self) -> str:
        """Human-readable outcome."""
        lift = self.lift_over_random
        return (
            "Proactive policy: %d pulls -> %d disk failures avoided "
            "(precision %.3f, %sx over random),\n  %d wasted; covered "
            "%.0f%% of the %d post-cutoff disk failures; %d non-disk\n"
            "  subsystem failures were unavoidable by disk replacement "
            "(the paper's point)."
            % (
                self.flags,
                self.avoided_disk_failures,
                self.precision,
                "inf" if lift == float("inf") else "%.0f" % lift,
                self.wasted_replacements,
                100.0 * self.avoided_share,
                self.disk_failures_after_cutoff,
                self.unavoidable_failures_after_cutoff,
            )
        )


def _train_before_cutoff(
    injection: InjectionResult,
    extractor: FeatureExtractor,
    cutoff: float,
    config: PolicyConfig,
) -> LogisticModel:
    """Fit the predictor on samples fully contained before the cutoff."""
    from repro.predict.samples import build_samples

    dataset = FailureDataset.from_injection(injection)
    samples = build_samples(
        dataset,
        horizon_days=config.horizon_days,
        grid_days=config.grid_days,
        negative_ratio=config.negative_ratio,
        seed=0,
    )
    horizon = config.horizon_days * SECONDS_PER_DAY
    keep = [
        index
        for index, (_disk, time) in enumerate(samples.pairs)
        if time + horizon <= cutoff
    ]
    if len(keep) < 50:
        raise AnalysisError("too few pre-cutoff samples; enlarge the fleet")
    pairs = [samples.pairs[i] for i in keep]
    labels = samples.labels[keep]
    if labels.min() == labels.max():
        raise AnalysisError("pre-cutoff samples contain a single class")
    return LogisticModel.fit(
        extractor.matrix(pairs), labels, feature_names=FEATURE_NAMES
    )


def evaluate_proactive_policy(
    injection: InjectionResult,
    config: PolicyConfig = PolicyConfig(),
) -> Tuple[LogisticModel, PolicyOutcome]:
    """Train before the cutoff, apply the policy after it, score it.

    Returns:
        ``(trained model, outcome)``.
    """
    if not injection.recovered_errors:
        raise AnalysisError("policy needs the component-error stream")
    duration = injection.fleet.duration_seconds
    cutoff = config.cutoff_months * SECONDS_PER_MONTH
    if cutoff >= duration:
        raise AnalysisError("cutoff lies beyond the study window")

    extractor = FeatureExtractor(injection.fleet, injection.recovered_errors)
    model = _train_before_cutoff(injection, extractor, cutoff, config)

    # Disk-failure times per disk (for scoring flags), all types for the
    # unavoidable tally.
    from repro.failures.types import FailureType

    disk_failures: Dict[str, List[float]] = {}
    disk_after_cutoff = 0
    unavoidable_after_cutoff = 0
    for event in injection.events:
        if event.failure_type is FailureType.DISK:
            disk_failures.setdefault(event.disk_id, []).append(event.detect_time)
            if event.detect_time >= cutoff:
                disk_after_cutoff += 1
        elif event.detect_time >= cutoff:
            unavoidable_after_cutoff += 1
    for times in disk_failures.values():
        times.sort()

    review = config.review_days * SECONDS_PER_DAY
    flags = 0
    avoided = 0
    wasted = 0
    pairs: List[Tuple[str, float]] = []
    owners: List[str] = []
    for system in injection.fleet.systems:
        for disk in system.iter_disks():
            end = disk.remove_time if disk.remove_time is not None else duration
            time = max(cutoff, disk.install_time) + review
            while time < end:
                pairs.append((disk.disk_id, time))
                owners.append(disk.disk_id)
                time += review
    if not pairs:
        raise AnalysisError("no post-cutoff review points")
    scores = model.predict_proba(extractor.matrix(pairs))
    # Act on the top budget-fraction of review points.
    threshold = float(
        np.quantile(scores, 1.0 - config.flag_budget_fraction)
    )

    protection = config.protection_days * SECONDS_PER_DAY

    def preempts(disk_id: str, flag_time: float) -> bool:
        times = disk_failures.get(disk_id, [])
        index = bisect.bisect_right(times, flag_time)
        return index < len(times) and times[index] <= flag_time + protection

    flagged: Dict[str, float] = {}
    for (disk_id, time), score in zip(pairs, scores):
        if score >= threshold and disk_id not in flagged:
            flagged[disk_id] = time
    for disk_id, flag_time in flagged.items():
        flags += 1
        if preempts(disk_id, flag_time):
            avoided += 1
        else:
            wasted += 1

    # Random baseline of the same budget: pick the same number of
    # distinct disks at random review points (seeded).
    rng = np.random.default_rng(0)
    baseline_hits = 0
    baseline_flags = max(1, len(flagged))
    random_flagged: Dict[str, float] = {}
    for index in rng.permutation(len(pairs)):
        disk_id, time = pairs[int(index)]
        if disk_id not in random_flagged:
            random_flagged[disk_id] = time
            if len(random_flagged) >= baseline_flags:
                break
    for disk_id, flag_time in random_flagged.items():
        if preempts(disk_id, flag_time):
            baseline_hits += 1
    baseline_precision = baseline_hits / max(1, len(random_flagged))

    outcome = PolicyOutcome(
        flags=flags,
        avoided_disk_failures=avoided,
        wasted_replacements=wasted,
        disk_failures_after_cutoff=disk_after_cutoff,
        unavoidable_failures_after_cutoff=unavoidable_after_cutoff,
        baseline_precision=baseline_precision,
    )
    return model, outcome
