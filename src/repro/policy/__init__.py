"""Proactive maintenance policies: acting on failure predictions.

The paper motivates understanding failure characteristics so designers
can "develop better fault-tolerant mechanisms" (§1.1) and proposes
failure prediction as future work (§7).  This package closes the loop:
a policy watches the component-error stream, flags high-risk disks via
the trained predictor, and proactively replaces them — and the
evaluator replays a simulated history to measure what that buys
(disk failures avoided) and costs (healthy disks pulled).

The evaluation uses a *temporal* split: the predictor trains on the
first part of the study window and the policy is scored on the rest, so
no future information leaks into the decisions.
"""

from repro.policy.proactive import (
    PolicyConfig,
    PolicyOutcome,
    evaluate_proactive_policy,
)

__all__ = [
    "PolicyConfig",
    "PolicyOutcome",
    "evaluate_proactive_policy",
]
